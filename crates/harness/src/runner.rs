//! Shared experiment-running machinery: scaled-vs-full durations, dumbbell
//! runs with the standard metric set, and table formatting.

use cebinae_engine::{
    dumbbell, BufferConfig, Discipline, DumbbellFlow, ScenarioParams, SimResult, Simulation,
};
use cebinae_faults::FaultPlan;
use cebinae_metrics::jfi;
use cebinae_par::TrialPool;
use cebinae_sim::{Duration, SchedulerKind, Time};

/// Global experiment context: scaled (default) or full paper durations,
/// trial-pool width, and the telemetry sink.
///
/// All environment reads live in [`Ctx::from_env`]; experiment modules
/// take a `&Ctx` instead of consulting `std::env` themselves.
#[derive(Clone, Debug)]
pub struct Ctx {
    /// Run the paper's full 100 s experiments instead of scaled ones.
    pub full: bool,
    /// Base RNG seed / trial index.
    pub seed: u64,
    /// Worker threads for independent seeded trials (`CEBINAE_THREADS`).
    /// Experiment output is byte-identical for any value — trials are
    /// collected in job order, never completion order.
    pub threads: usize,
    /// NDJSON telemetry sink path (`CEBINAE_TELEMETRY` / `--telemetry`);
    /// `None` disables collection.
    pub telemetry: Option<String>,
    /// Event-loop scheduler backend (`CEBINAE_SCHED=heap|wheel`). Every
    /// experiment is byte-identical under either; the wheel is the default.
    pub sched: SchedulerKind,
    /// Fault plan applied by fault-aware experiments (`CEBINAE_FAULTS` /
    /// `--faults`, compact [`FaultPlan::parse`] syntax). Empty by default:
    /// the paper's tables and figures always run clean; only experiments
    /// that opt in (the `chaos` experiment) consult this.
    pub faults: FaultPlan,
}

impl Ctx {
    /// Context from the environment: `CEBINAE_FULL`, `CEBINAE_THREADS`,
    /// `CEBINAE_TELEMETRY` (sink path), `CEBINAE_SCHED` (`heap` / `wheel`;
    /// unknown values fall back to the default backend), and
    /// `CEBINAE_FAULTS` (compact fault spec; a malformed spec warns on
    /// stderr and runs clean rather than silently faulting the wrong
    /// thing).
    pub fn from_env() -> Ctx {
        Ctx {
            full: std::env::var_os("CEBINAE_FULL").is_some(),
            seed: 1,
            threads: cebinae_par::threads_from_env(),
            telemetry: std::env::var_os("CEBINAE_TELEMETRY")
                .map(|v| v.to_string_lossy().into_owned()),
            sched: std::env::var_os("CEBINAE_SCHED")
                .and_then(|v| SchedulerKind::parse(&v.to_string_lossy()))
                .unwrap_or_default(),
            faults: std::env::var_os("CEBINAE_FAULTS")
                .map(|v| match FaultPlan::parse(&v.to_string_lossy()) {
                    Ok(plan) => plan,
                    Err(e) => {
                        eprintln!("CEBINAE_FAULTS ignored: {e}");
                        FaultPlan::default()
                    }
                })
                .unwrap_or_default(),
        }
    }

    /// Serial context with the given flags — the configuration every unit
    /// test uses, and the reproducibility reference for parallel runs.
    pub fn serial(full: bool, seed: u64) -> Ctx {
        Ctx {
            full,
            seed,
            threads: 1,
            telemetry: None,
            sched: SchedulerKind::default(),
            faults: FaultPlan::default(),
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Ctx {
        self.seed = seed;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Ctx {
        self.threads = threads;
        self
    }

    pub fn with_full(mut self, full: bool) -> Ctx {
        self.full = full;
        self
    }

    /// Route telemetry to `path` (`None` disables).
    pub fn with_telemetry(mut self, path: Option<String>) -> Ctx {
        self.telemetry = path;
        self
    }

    /// Select the event-loop scheduler backend for every run this context
    /// drives.
    pub fn with_scheduler(mut self, sched: SchedulerKind) -> Ctx {
        self.sched = sched;
        self
    }

    /// Arm a fault plan for fault-aware experiments.
    pub fn with_faults(mut self, faults: FaultPlan) -> Ctx {
        self.faults = faults;
        self
    }

    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The trial pool experiments fan their independent seeded jobs onto.
    pub fn pool(&self) -> TrialPool {
        TrialPool::with_threads(self.threads)
    }

    /// Choose the simulated duration: the paper's `full_secs` when running
    /// full, else `scaled_secs`.
    pub fn secs(&self, scaled_secs: u64, full_secs: u64) -> Duration {
        Duration::from_secs(if self.full { full_secs } else { scaled_secs })
    }

    /// Append per-trial telemetry exports to the configured sink, in job
    /// order (determinism: the file content depends only on the runs, not
    /// on thread scheduling). Each export is preceded by a header line
    /// naming the experiment and trial index. No-op without a sink.
    pub fn export_telemetry<S: AsRef<str>>(&self, label: &str, exports: &[Option<S>]) {
        let Some(path) = &self.telemetry else {
            return;
        };
        use std::io::Write;
        let mut file = match std::fs::OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("telemetry sink {path}: {e}");
                return;
            }
        };
        for (trial, export) in exports.iter().enumerate() {
            if let Some(nd) = export {
                let _ = writeln!(file, "{{\"run\":{label:?},\"trial\":{trial}}}");
                let _ = file.write_all(nd.as_ref().as_bytes());
            }
        }
    }

    /// [`Ctx::export_telemetry`] over a batch of run metrics.
    pub fn export_runs(&self, label: &str, runs: &[RunMetrics]) {
        let exports: Vec<Option<&str>> =
            runs.iter().map(|m| m.result.telemetry.as_deref()).collect();
        self.export_telemetry(label, &exports);
    }
}

/// Builder for the standard single-bottleneck dumbbell run.
///
/// ```no_run
/// use cebinae_harness::DumbbellRun;
/// use cebinae_engine::{Discipline, DumbbellFlow};
/// use cebinae_sim::{Duration, SchedulerKind};
/// use cebinae_transport::CcKind;
///
/// let flows = vec![DumbbellFlow::new(CcKind::NewReno, 20); 2];
/// let m = DumbbellRun::new(100_000_000)
///     .buffer_mtus(420)
///     .discipline(Discipline::Cebinae)
///     .duration(Duration::from_secs(10))
///     .seed(7)
///     .scheduler(SchedulerKind::Wheel)
///     .run(&flows);
/// ```
///
/// Defaults: 420-MTU buffer, FIFO, 10 s, seed 1, the default [`Scheduler`]
/// backend (timing wheel), Cebinae recompute period pinned to P = 1 (the
/// harness-wide convention).
///
/// [`Scheduler`]: cebinae_sim::Scheduler
#[derive(Clone, Debug)]
pub struct DumbbellRun {
    params: ScenarioParams,
}

impl DumbbellRun {
    pub fn new(rate_bps: u64) -> DumbbellRun {
        let mut params = ScenarioParams::new(rate_bps, 420, Discipline::Fifo);
        params.cebinae_p = Some(1);
        DumbbellRun { params }
    }

    pub fn buffer_mtus(mut self, mtus: u64) -> DumbbellRun {
        self.params.buffer = BufferConfig::mtus(mtus);
        self
    }

    pub fn discipline(mut self, d: Discipline) -> DumbbellRun {
        self.params.discipline = d;
        self
    }

    pub fn duration(mut self, d: Duration) -> DumbbellRun {
        self.params.duration = d;
        self
    }

    pub fn seed(mut self, seed: u64) -> DumbbellRun {
        self.params.seed = seed;
        self
    }

    /// Collect deterministic telemetry into `RunMetrics::result.telemetry`.
    pub fn telemetry(mut self, on: bool) -> DumbbellRun {
        self.params.telemetry = on;
        self
    }

    /// Allow or forbid the engine's express path (default allowed); see
    /// [`cebinae_engine::SimConfig::express`].
    pub fn express(mut self, on: bool) -> DumbbellRun {
        self.params.express = on;
        self
    }

    /// Select the event-loop scheduler backend (run-identical either way).
    pub fn scheduler(mut self, sched: SchedulerKind) -> DumbbellRun {
        self.params.scheduler = sched;
        self
    }

    /// Apply a [`FaultPlan`] to every run built from this builder.
    pub fn faults(mut self, plan: FaultPlan) -> DumbbellRun {
        self.params.faults = plan;
        self
    }

    /// The underlying scenario parameters, for sweeps the builder doesn't
    /// cover (thresholds, sample interval, ...).
    pub fn params(&self) -> &ScenarioParams {
        &self.params
    }

    pub fn params_mut(&mut self) -> &mut ScenarioParams {
        &mut self.params
    }

    /// Validate the configuration against `flows`: the builder accepts any
    /// values so sweeps can be composed freely, but a run needs a non-empty
    /// flow set and physically meaningful parameters.
    pub fn check(&self, flows: &[DumbbellFlow]) -> Result<(), String> {
        if flows.is_empty() {
            return Err("dumbbell run needs at least one flow".into());
        }
        self.params.validate()
    }

    /// Run once and compute the standard metric set.
    ///
    /// Panics on an invalid configuration; use [`DumbbellRun::try_run`] to
    /// get the rejection as an error instead.
    pub fn run(&self, flows: &[DumbbellFlow]) -> RunMetrics {
        self.try_run(flows).expect("invalid dumbbell configuration")
    }

    /// Fallible [`DumbbellRun::run`]: rejects invalid configs (empty flow
    /// set, zero-capacity link, zero buffer/duration) with a description.
    pub fn try_run(&self, flows: &[DumbbellFlow]) -> Result<RunMetrics, String> {
        self.check(flows)?;
        Ok(run_with_params(flows, &self.params))
    }

    /// Run one independent simulation per seed, fanned across `pool`.
    /// Results come back in seed order regardless of thread count.
    pub fn run_trials(
        &self,
        pool: TrialPool,
        flows: &[DumbbellFlow],
        seeds: &[u64],
    ) -> Vec<RunMetrics> {
        self.try_run_trials(pool, flows, seeds)
            .expect("invalid dumbbell configuration")
    }

    /// Fallible [`DumbbellRun::run_trials`]: the configuration is checked
    /// once up front, so a bad config fails fast instead of panicking on a
    /// worker thread.
    pub fn try_run_trials(
        &self,
        pool: TrialPool,
        flows: &[DumbbellFlow],
        seeds: &[u64],
    ) -> Result<Vec<RunMetrics>, String> {
        self.check(flows)?;
        Ok(pool.map(seeds.to_vec(), |_, seed| self.clone().seed(seed).run(flows)))
    }
}

/// Standard single-bottleneck run outcome.
pub struct RunMetrics {
    /// Bottleneck throughput, bits/sec (paper "Throughput" columns).
    pub throughput_bps: f64,
    /// Sum of application goodputs, bits/sec (paper "Goodput" columns).
    pub goodput_bps: f64,
    /// Jain's index over per-flow goodputs.
    pub jfi: f64,
    /// Per-flow goodputs, bits/sec.
    pub per_flow_bps: Vec<f64>,
    pub result: SimResult,
}

/// Warmup excluded from averages (slow-start transient), as a fraction of
/// the run.
const WARMUP_FRACTION: u64 = 10;

/// Run with explicit parameters (threshold sweeps etc.).
pub fn run_with_params(flows: &[DumbbellFlow], p: &ScenarioParams) -> RunMetrics {
    let (cfg, bneck) = dumbbell(flows, p);
    let result = Simulation::new(cfg).run();
    let warmup = Time::ZERO + p.duration / WARMUP_FRACTION;
    let per_flow_bps = result.goodputs_bps(warmup);
    RunMetrics {
        throughput_bps: result.link_throughput_bps(bneck, warmup),
        goodput_bps: per_flow_bps.iter().sum(),
        jfi: jfi(&per_flow_bps),
        per_flow_bps,
        result,
    }
}

/// Render a rate in the paper's Table 2 style (Mbps with 4-5 significant
/// digits).
pub fn mbps(bps: f64) -> String {
    let m = bps / 1e6;
    if m >= 1000.0 {
        format!("{m:.0}")
    } else if m >= 100.0 {
        format!("{m:.1}")
    } else {
        format!("{m:.2}")
    }
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cebinae_transport::CcKind;

    #[test]
    fn run_dumbbell_produces_consistent_metrics() {
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 20),
        ];
        let m = DumbbellRun::new(10_000_000)
            .buffer_mtus(100)
            .duration(Duration::from_secs(4))
            .run(&flows);
        assert_eq!(m.per_flow_bps.len(), 2);
        assert!((m.goodput_bps - m.per_flow_bps.iter().sum::<f64>()).abs() < 1.0);
        assert!(m.goodput_bps < m.throughput_bps);
        assert!(m.jfi > 0.0 && m.jfi <= 1.0);
        assert!(m.result.telemetry.is_none(), "telemetry off by default");
    }

    #[test]
    fn invalid_configs_rejected_with_errors() {
        let flows = vec![DumbbellFlow::new(CcKind::NewReno, 20)];

        // Empty flow set.
        let err = DumbbellRun::new(10_000_000).try_run(&[]).err().expect("config should be rejected");
        assert!(err.contains("at least one flow"), "{err}");

        // Zero-capacity bottleneck.
        let err = DumbbellRun::new(0).try_run(&flows).err().expect("config should be rejected");
        assert!(err.contains("capacity"), "{err}");

        // Zero buffer.
        let err = DumbbellRun::new(10_000_000)
            .buffer_mtus(0)
            .try_run(&flows)
            .err().expect("config should be rejected");
        assert!(err.contains("buffer"), "{err}");

        // Zero duration.
        let err = DumbbellRun::new(10_000_000)
            .duration(Duration::ZERO)
            .try_run(&flows)
            .err().expect("config should be rejected");
        assert!(err.contains("duration"), "{err}");

        // Trials reject up front, before any worker runs.
        let err = DumbbellRun::new(0)
            .try_run_trials(cebinae_par::TrialPool::with_threads(2), &flows, &[1, 2])
            .err().expect("config should be rejected");
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn try_run_matches_run_on_valid_configs() {
        let flows = vec![DumbbellFlow::new(CcKind::Cubic, 30)];
        let run = DumbbellRun::new(10_000_000)
            .buffer_mtus(100)
            .discipline(Discipline::Cebinae)
            .duration(Duration::from_secs(2))
            .seed(7);
        let a = run.try_run(&flows).unwrap();
        let b = run.run(&flows);
        assert_eq!(a.per_flow_bps, b.per_flow_bps);
        assert_eq!(a.result.events_processed, b.result.events_processed);
    }

    #[test]
    fn ctx_scaling() {
        let scaled = Ctx::serial(false, 0);
        let full = Ctx::serial(true, 0);
        assert_eq!(scaled.secs(10, 100), Duration::from_secs(10));
        assert_eq!(full.secs(10, 100), Duration::from_secs(100));
        assert_eq!(scaled.pool().threads(), 1);
    }

    #[test]
    fn ctx_builder_chains() {
        let ctx = Ctx::serial(false, 0)
            .with_seed(9)
            .with_threads(3)
            .with_full(true)
            .with_telemetry(Some("t.ndjson".into()))
            .with_scheduler(SchedulerKind::Heap)
            .with_faults(FaultPlan::uniform_loss(0.01));
        assert_eq!(ctx.seed, 9);
        assert_eq!(ctx.threads, 3);
        assert!(ctx.full);
        assert!(ctx.telemetry_enabled());
        assert_eq!(ctx.sched, SchedulerKind::Heap);
        assert!(!ctx.faults.is_empty());
        assert!(!Ctx::serial(false, 0).telemetry_enabled());
        assert_eq!(Ctx::serial(false, 0).sched, SchedulerKind::default());
        assert!(Ctx::serial(false, 0).faults.is_empty(), "experiments run clean by default");
    }

    #[test]
    fn faulted_dumbbell_run_costs_throughput() {
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 20),
        ];
        let base = DumbbellRun::new(10_000_000)
            .buffer_mtus(100)
            .duration(Duration::from_secs(3))
            .seed(7);
        let clean = base.clone().run(&flows);
        let lossy = base.faults(FaultPlan::uniform_loss(0.03)).run(&flows);
        assert!(
            lossy.goodput_bps < clean.goodput_bps,
            "3% loss must cost goodput: {} vs {}",
            lossy.goodput_bps,
            clean.goodput_bps
        );
    }

    #[test]
    fn mbps_formatting() {
        assert_eq!(mbps(98.95e6), "98.95");
        assert_eq!(mbps(989.8e6), "989.8");
        assert_eq!(mbps(9876e6), "9876");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert_eq!(lines[2].trim_start().split_whitespace().count(), 2);
    }

    #[test]
    fn table_with_zero_columns_renders() {
        // Regression: `2 * (widths.len() - 1)` underflowed with no columns.
        let t = Table::new(&[]);
        let s = t.render();
        assert_eq!(s, "\n\n");
    }

    #[test]
    fn trial_batch_matches_individual_runs() {
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 20),
        ];
        let seeds = [1u64, 2, 3];
        let run = DumbbellRun::new(10_000_000)
            .buffer_mtus(100)
            .duration(Duration::from_secs(2));
        let batch = run.run_trials(cebinae_par::TrialPool::with_threads(4), &flows, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (m, &seed) in batch.iter().zip(&seeds) {
            let solo = run.clone().seed(seed).run(&flows);
            assert_eq!(m.per_flow_bps, solo.per_flow_bps, "seed {seed}");
            assert_eq!(
                m.result.events_processed, solo.result.events_processed,
                "seed {seed}"
            );
        }
    }
}
