//! Shared experiment-running machinery: scaled-vs-full durations, dumbbell
//! runs with the standard metric set, and table formatting.

use cebinae_engine::{dumbbell, Discipline, DumbbellFlow, ScenarioParams, SimResult, Simulation};
use cebinae_metrics::jfi;
use cebinae_par::TrialPool;
use cebinae_sim::{Duration, Time};

/// Global experiment context: scaled (default) or full paper durations.
#[derive(Clone, Copy, Debug)]
pub struct Ctx {
    /// Run the paper's full 100 s experiments instead of scaled ones.
    pub full: bool,
    /// Base RNG seed / trial index.
    pub seed: u64,
    /// Worker threads for independent seeded trials (`CEBINAE_THREADS`).
    /// Experiment output is byte-identical for any value — trials are
    /// collected in job order, never completion order.
    pub threads: usize,
}

impl Ctx {
    pub fn from_env() -> Ctx {
        Ctx {
            full: std::env::var_os("CEBINAE_FULL").is_some(),
            seed: 1,
            threads: cebinae_par::threads_from_env(),
        }
    }

    /// Serial context with the given flags — the configuration every unit
    /// test uses, and the reproducibility reference for parallel runs.
    pub fn serial(full: bool, seed: u64) -> Ctx {
        Ctx {
            full,
            seed,
            threads: 1,
        }
    }

    /// The trial pool experiments fan their independent seeded jobs onto.
    pub fn pool(&self) -> TrialPool {
        TrialPool::with_threads(self.threads)
    }

    /// Choose the simulated duration: the paper's `full_secs` when running
    /// full, else `scaled_secs`.
    pub fn secs(&self, scaled_secs: u64, full_secs: u64) -> Duration {
        Duration::from_secs(if self.full { full_secs } else { scaled_secs })
    }
}

/// Standard single-bottleneck run outcome.
pub struct RunMetrics {
    /// Bottleneck throughput, bits/sec (paper "Throughput" columns).
    pub throughput_bps: f64,
    /// Sum of application goodputs, bits/sec (paper "Goodput" columns).
    pub goodput_bps: f64,
    /// Jain's index over per-flow goodputs.
    pub jfi: f64,
    /// Per-flow goodputs, bits/sec.
    pub per_flow_bps: Vec<f64>,
    pub result: SimResult,
}

/// Warmup excluded from averages (slow-start transient), as a fraction of
/// the run.
const WARMUP_FRACTION: u64 = 10;

/// Run a dumbbell scenario and compute the standard metrics.
pub fn run_dumbbell(
    flows: &[DumbbellFlow],
    rate_bps: u64,
    buffer_mtus: u64,
    discipline: Discipline,
    duration: Duration,
    seed: u64,
) -> RunMetrics {
    let mut p = ScenarioParams::new(rate_bps, buffer_mtus, discipline);
    p.duration = duration;
    p.seed = seed;
    p.cebinae_p = Some(1);
    run_with_params(flows, &p)
}

/// Run with explicit parameters (threshold sweeps etc.).
pub fn run_with_params(flows: &[DumbbellFlow], p: &ScenarioParams) -> RunMetrics {
    let (cfg, bneck) = dumbbell(flows, p);
    let result = Simulation::new(cfg).run();
    let warmup = Time::ZERO + p.duration / WARMUP_FRACTION;
    let per_flow_bps = result.goodputs_bps(warmup);
    RunMetrics {
        throughput_bps: result.link_throughput_bps(bneck, warmup),
        goodput_bps: per_flow_bps.iter().sum(),
        jfi: jfi(&per_flow_bps),
        per_flow_bps,
        result,
    }
}

/// Run the same dumbbell scenario under a batch of seeds, one independent
/// simulation per seed, fanned across `pool`. Results come back in seed
/// order regardless of thread count.
pub fn run_dumbbell_trials(
    pool: TrialPool,
    flows: &[DumbbellFlow],
    rate_bps: u64,
    buffer_mtus: u64,
    discipline: Discipline,
    duration: Duration,
    seeds: &[u64],
) -> Vec<RunMetrics> {
    pool.map(seeds.to_vec(), |_, seed| {
        run_dumbbell(flows, rate_bps, buffer_mtus, discipline, duration, seed)
    })
}

/// Render a rate in the paper's Table 2 style (Mbps with 4-5 significant
/// digits).
pub fn mbps(bps: f64) -> String {
    let m = bps / 1e6;
    if m >= 1000.0 {
        format!("{m:.0}")
    } else if m >= 100.0 {
        format!("{m:.1}")
    } else {
        format!("{m:.2}")
    }
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cebinae_transport::CcKind;

    #[test]
    fn run_dumbbell_produces_consistent_metrics() {
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 20),
        ];
        let m = run_dumbbell(
            &flows,
            10_000_000,
            100,
            Discipline::Fifo,
            Duration::from_secs(4),
            1,
        );
        assert_eq!(m.per_flow_bps.len(), 2);
        assert!((m.goodput_bps - m.per_flow_bps.iter().sum::<f64>()).abs() < 1.0);
        assert!(m.goodput_bps < m.throughput_bps);
        assert!(m.jfi > 0.0 && m.jfi <= 1.0);
    }

    #[test]
    fn ctx_scaling() {
        let scaled = Ctx::serial(false, 0);
        let full = Ctx::serial(true, 0);
        assert_eq!(scaled.secs(10, 100), Duration::from_secs(10));
        assert_eq!(full.secs(10, 100), Duration::from_secs(100));
        assert_eq!(scaled.pool().threads(), 1);
    }

    #[test]
    fn mbps_formatting() {
        assert_eq!(mbps(98.95e6), "98.95");
        assert_eq!(mbps(989.8e6), "989.8");
        assert_eq!(mbps(9876e6), "9876");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert_eq!(lines[2].trim_start().split_whitespace().count(), 2);
    }

    #[test]
    fn table_with_zero_columns_renders() {
        // Regression: `2 * (widths.len() - 1)` underflowed with no columns.
        let t = Table::new(&[]);
        let s = t.render();
        assert_eq!(s, "\n\n");
    }

    #[test]
    fn trial_batch_matches_individual_runs() {
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 20),
        ];
        let seeds = [1u64, 2, 3];
        let batch = run_dumbbell_trials(
            cebinae_par::TrialPool::with_threads(4),
            &flows,
            10_000_000,
            100,
            Discipline::Fifo,
            Duration::from_secs(2),
            &seeds,
        );
        assert_eq!(batch.len(), seeds.len());
        for (m, &seed) in batch.iter().zip(&seeds) {
            let solo = run_dumbbell(
                &flows,
                10_000_000,
                100,
                Discipline::Fifo,
                Duration::from_secs(2),
                seed,
            );
            assert_eq!(m.per_flow_bps, solo.per_flow_bps, "seed {seed}");
            assert_eq!(
                m.result.events_processed, solo.result.events_processed,
                "seed {seed}"
            );
        }
    }
}
