//! Figure 11: the parking-lot multi-bottleneck scenario. 8 NewReno flows
//! cross three 100 Mbps segments, contending with 2 Bic (segment 1),
//! 8 Vegas (segment 2), and 4 Cubic (segment 3). Reports per-flow goodput
//! under FIFO and Cebinae against the ideal max-min allocation, plus the
//! max-min-normalized JFI of §5.3.

use cebinae_engine::{parking_lot, Discipline, ParkingLotGroup, ScenarioParams, Simulation};
use cebinae_metrics::{jfi_maxmin_normalized, water_filling, MaxMinFlow};
use cebinae_sim::{Duration, Time};
use cebinae_transport::CcKind;

use crate::runner::{Ctx, Table};

/// Goodput/wire ratio (1448-byte MSS in 1500-byte frames).
const GOODPUT_RATIO: f64 = 1448.0 / 1500.0;

pub struct ParkingLotSpec {
    pub groups: Vec<ParkingLotGroup>,
    pub segments: usize,
    pub rate_bps: u64,
}

pub fn paper_spec() -> ParkingLotSpec {
    ParkingLotSpec {
        segments: 3,
        rate_bps: 100_000_000,
        groups: vec![
            ParkingLotGroup {
                cc: CcKind::NewReno,
                count: 8,
                enter: 0,
                exit: 3,
                rtt: Duration::from_millis(60),
            },
            ParkingLotGroup {
                cc: CcKind::Bic,
                count: 2,
                enter: 0,
                exit: 1,
                rtt: Duration::from_millis(20),
            },
            ParkingLotGroup {
                cc: CcKind::Vegas,
                count: 8,
                enter: 1,
                exit: 2,
                rtt: Duration::from_millis(20),
            },
            ParkingLotGroup {
                cc: CcKind::Cubic,
                count: 4,
                enter: 2,
                exit: 3,
                rtt: Duration::from_millis(20),
            },
        ],
    }
}

/// Ideal goodputs via water-filling over the parking-lot capacities.
pub fn ideal_goodputs(spec: &ParkingLotSpec) -> Vec<f64> {
    let caps: Vec<f64> = (0..spec.segments).map(|_| spec.rate_bps as f64).collect();
    let mut flows = Vec::new();
    for g in &spec.groups {
        for _ in 0..g.count {
            flows.push(MaxMinFlow::through((g.enter..g.exit).collect::<Vec<_>>()));
        }
    }
    water_filling(&caps, &flows)
        .into_iter()
        .map(|r| r * GOODPUT_RATIO)
        .collect()
}

pub fn run(ctx: &Ctx) -> String {
    let spec = paper_spec();
    let duration = ctx.secs(40, 100);
    let ideal = ideal_goodputs(&spec);

    let mut per_disc = Vec::new();
    let mut exports = Vec::new();
    for d in [Discipline::Fifo, Discipline::Cebinae] {
        let mut p = ScenarioParams::new(spec.rate_bps, 850, d);
        p.duration = duration;
        p.seed = ctx.seed;
        p.cebinae_p = Some(1);
        p.telemetry = ctx.telemetry_enabled();
        let (cfg, _links) = parking_lot(spec.segments, &spec.groups, &p);
        let r = Simulation::new(cfg).run();
        let g = r.goodputs_bps(Time::ZERO + duration / 10);
        per_disc.push(g);
        exports.push(r.telemetry);
    }
    ctx.export_telemetry("fig11", &exports);

    let mut t = Table::new(&["flow", "cca", "ideal[Mbps]", "FIFO[Mbps]", "Cebinae[Mbps]"]);
    let mut labels = Vec::new();
    for g in &spec.groups {
        for _ in 0..g.count {
            labels.push(g.cc.label());
        }
    }
    for i in 0..labels.len() {
        t.row(vec![
            i.to_string(),
            labels[i].into(),
            format!("{:.1}", ideal[i] / 1e6),
            format!("{:.1}", per_disc[0][i] / 1e6),
            format!("{:.1}", per_disc[1][i] / 1e6),
        ]);
    }
    let jfi_fifo = jfi_maxmin_normalized(&per_disc[0], &ideal);
    let jfi_ceb = jfi_maxmin_normalized(&per_disc[1], &ideal);
    format!(
        "{}\nmax-min-normalized JFI: FIFO {:.3} -> Cebinae {:.3} (paper: 0.852 -> 0.978)\n",
        t.render(),
        jfi_fifo,
        jfi_ceb
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_allocation_matches_hand_computation() {
        let ideal = ideal_goodputs(&paper_spec());
        assert_eq!(ideal.len(), 22);
        // Water-filling: segment 2 (8 long + 8 Vegas = 16 flows) saturates
        // first at 100/16 = 6.25 Mbps, freezing longs and Vegas. Segment 1
        // then leaves 100 − 8·6.25 = 50 for 2 Bic = 25 each; segment 3
        // leaves 50 for 4 Cubic = 12.5 each.
        let long = ideal[0] / GOODPUT_RATIO;
        assert!((long - 6.25e6).abs() < 1.0, "long flows: {long}");
        let bic = ideal[8] / GOODPUT_RATIO;
        assert!((bic - 25e6).abs() < 1.0, "bic flows: {bic}");
        let vegas = ideal[10] / GOODPUT_RATIO;
        assert!((vegas - 6.25e6).abs() < 1.0, "vegas flows: {vegas}");
        let cubic = ideal[18] / GOODPUT_RATIO;
        assert!((cubic - 12.5e6).abs() < 1.0, "cubic flows: {cubic}");
    }

    #[test]
    fn spec_matches_paper_counts() {
        let s = paper_spec();
        let total: usize = s.groups.iter().map(|g| g.count).sum();
        assert_eq!(total, 22, "8 NewReno + 2 Bic + 8 Vegas + 4 Cubic");
        assert_eq!(s.segments, 3);
    }
}
