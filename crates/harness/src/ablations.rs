//! Ablations beyond the paper's tables: design-choice sensitivity studies
//! called out in DESIGN.md.
//!
//! * `p_sensitivity` — the recomputation period P (CP reaction speed vs.
//!   measurement smoothing);
//! * `per_flow_top` — the §7 future-work extension (one LBF per ⊤ flow)
//!   versus the aggregate ⊤ group;
//! * `disciplines` — all five disciplines (incl. AFQ) on one scenario;
//! * `ecn` — Cebinae's ECN marking path with ECN-enabled NewReno.

use cebinae_engine::{Discipline, DumbbellFlow, ScenarioParams};
use cebinae_transport::CcKind;

use crate::runner::{mbps, run_with_params, Ctx, Table};

fn contested_flows() -> Vec<DumbbellFlow> {
    // 4 Cubic @256 ms vs 4 Cubic @16 ms: the hardest (RTT-asymmetric)
    // scenario, where CP dynamics matter most.
    let mut flows: Vec<_> = (0..4).map(|_| DumbbellFlow::new(CcKind::Cubic, 256)).collect();
    flows.extend((0..4).map(|_| DumbbellFlow::new(CcKind::Cubic, 16)));
    flows
}

/// Sweep P — the number of dT rounds between CP recomputations.
pub fn p_sensitivity(ctx: &Ctx) -> String {
    let flows = contested_flows();
    let duration = ctx.secs(30, 100);
    let mut t = Table::new(&["P", "JFI", "goodput[Mbps]", "saturated-frac"]);
    const P_VALUES: [u32; 5] = [1, 2, 4, 8, 16];
    let results = ctx.pool().map(P_VALUES.to_vec(), |_, p_val| {
        let mut p = ScenarioParams::new(400_000_000, 2000, Discipline::Cebinae);
        p.duration = duration;
        p.seed = ctx.seed;
        p.cebinae_p = Some(p_val);
        p.telemetry = ctx.telemetry_enabled();
        run_with_params(&flows, &p)
    });
    ctx.export_runs("ablation-p", &results);
    for (p_val, m) in P_VALUES.iter().zip(&results) {
        let sat = m
            .result
            .saturated_series
            .iter()
            .filter(|(_, s)| s[0])
            .count() as f64
            / m.result.saturated_series.len().max(1) as f64;
        t.row(vec![
            p_val.to_string(),
            format!("{:.3}", m.jfi),
            mbps(m.goodput_bps),
            format!("{:.2}", sat),
        ]);
    }
    t.render()
}

/// Aggregate-⊤ vs per-flow-⊤ (the paper's §7 extension).
pub fn per_flow_top(ctx: &Ctx) -> String {
    let mut flows: Vec<_> = (0..16).map(|_| DumbbellFlow::new(CcKind::Vegas, 50)).collect();
    flows.push(DumbbellFlow::new(CcKind::NewReno, 50));
    let duration = ctx.secs(30, 100);
    let mut t = Table::new(&["variant", "JFI", "goodput[Mbps]", "hog[Mbps]"]);
    let variants = vec![Discipline::Cebinae, Discipline::CebinaePerFlowTop];
    let results = ctx.pool().map(variants.clone(), |_, d| {
        let mut p = ScenarioParams::new(100_000_000, 850, d);
        p.duration = duration;
        p.seed = ctx.seed;
        p.cebinae_p = Some(1);
        p.telemetry = ctx.telemetry_enabled();
        run_with_params(&flows, &p)
    });
    ctx.export_runs("ablation-perflow", &results);
    for (d, m) in variants.iter().zip(&results) {
        t.row(vec![
            d.label().into(),
            format!("{:.3}", m.jfi),
            mbps(m.goodput_bps),
            format!("{:.2}", m.per_flow_bps[16] / 1e6),
        ]);
    }
    t.render()
}

/// All five disciplines on the Figure 7 scenario, including the AFQ
/// comparator.
pub fn disciplines(ctx: &Ctx) -> String {
    let mut flows: Vec<_> = (0..16).map(|_| DumbbellFlow::new(CcKind::Vegas, 50)).collect();
    flows.push(DumbbellFlow::new(CcKind::NewReno, 50));
    let duration = ctx.secs(30, 100);
    let mut t = Table::new(&["discipline", "JFI", "tput[Mbps]", "goodput[Mbps]"]);
    let all = vec![
        Discipline::Fifo,
        Discipline::FqCoDel,
        Discipline::Afq,
        Discipline::Cebinae,
        Discipline::CebinaePerFlowTop,
    ];
    let results = ctx.pool().map(all.clone(), |_, d| {
        let mut p = ScenarioParams::new(100_000_000, 850, d);
        p.duration = duration;
        p.seed = ctx.seed;
        p.cebinae_p = Some(1);
        p.telemetry = ctx.telemetry_enabled();
        run_with_params(&flows, &p)
    });
    ctx.export_runs("ablation-disciplines", &results);
    for (d, m) in all.iter().zip(&results) {
        t.row(vec![
            d.label().into(),
            format!("{:.3}", m.jfi),
            mbps(m.throughput_bps),
            mbps(m.goodput_bps),
        ]);
    }
    t.render()
}

/// Cebinae with ECN marking + ECN-capable NewReno (the §4.3 "optionally
/// mark ECN bits" path) versus loss-only signaling.
pub fn ecn(ctx: &Ctx) -> String {
    let duration = ctx.secs(30, 100);
    let mut t = Table::new(&["mode", "JFI", "goodput[Mbps]", "marked-pkts", "lbf-drops"]);
    let rows = ctx.pool().map(vec![false, true], |_, enable_ecn| {
        let mut flows: Vec<_> = (0..8)
            .map(|_| DumbbellFlow::new(CcKind::NewReno, 40))
            .collect();
        flows.push(DumbbellFlow::new(CcKind::Cubic, 40));
        let mut p = ScenarioParams::new(100_000_000, 850, Discipline::Cebinae);
        p.duration = duration;
        p.seed = ctx.seed;
        p.cebinae_p = Some(1);
        p.telemetry = ctx.telemetry_enabled();
        let mut ccfg = cebinae::CebinaeConfig::for_link(
            100_000_000,
            cebinae_net::BufferConfig::mtus(850),
            cebinae_sim::Duration::from_millis(80),
        );
        ccfg.enable_ecn = enable_ecn;
        ccfg.p = 1;
        p.cebinae_override = Some(ccfg);
        // ECN-capable endpoints.
        let (mut cfg, bneck) = cebinae_engine::dumbbell(&flows, &p);
        if enable_ecn {
            for f in &mut cfg.flows {
                f.tcp.ecn = true;
            }
        }
        let r = cebinae_engine::Simulation::new(cfg).run();
        let warm = cebinae_sim::Time::ZERO + duration / 10;
        let g = r.goodputs_bps(warm);
        let stats = r.link_stats[bneck.index()];
        let ceb = r
            .cebinae_series
            .last()
            .map(|(_, s)| s[0])
            .unwrap_or_default();
        let cells = vec![
            if enable_ecn { "ECN" } else { "loss-only" }.into(),
            format!("{:.3}", cebinae_metrics::jfi(&g)),
            mbps(g.iter().sum()),
            stats.ecn_marked.to_string(),
            ceb.lbf_drops.to_string(),
        ];
        (cells, r.telemetry)
    });
    let exports: Vec<Option<&str>> = rows.iter().map(|(_, t)| t.as_deref()).collect();
    ctx.export_telemetry("ablation-ecn", &exports);
    for (row, _) in rows {
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contested_flow_mix() {
        let f = contested_flows();
        assert_eq!(f.len(), 8);
        assert!(f[..4].iter().all(|x| x.rtt == cebinae_sim::Duration::from_millis(256)));
    }

    #[test]
    fn ecn_ablation_smoke() {
        // A very short run just exercising both paths end to end.
        let ctx = Ctx::serial(false, 1);
        let _ = ctx;
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 20),
        ];
        let mut p = ScenarioParams::new(20_000_000, 100, Discipline::Cebinae);
        p.duration = cebinae_sim::Duration::from_secs(3);
        p.cebinae_p = Some(1);
        let m = run_with_params(&flows, &p);
        assert!(m.goodput_bps > 1e6);
    }
}
