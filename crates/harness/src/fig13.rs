//! Figure 13: ⊤-flow detection accuracy (FPR/FNR) of the heavy-hitter
//! cache under a synthetic 10 Gbps ISP-backbone trace (the CAIDA
//! substitute), sweeping the round interval (13a) and the per-stage slot
//! count (13b), for 1/2/4-stage caches.

use cebinae::HeavyHitterCache;
use cebinae_sim::rng::experiment_rng;
use cebinae_sim::{Duration, Time};
use cebinae_traffic::{interval_packets, SyntheticTrace, TraceConfig};

use crate::runner::{Ctx, Table};

/// δf used for the ⊤ classification in this experiment (paper default 1%).
const DELTA_F: f64 = 0.01;

/// Accuracy of one (cache geometry, interval) configuration over a trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct Accuracy {
    pub fpr: f64,
    pub fnr: f64,
    pub intervals: usize,
    /// Cache updates performed during the replay — one per packet. This is
    /// the hot-path work unit of the experiment (it runs no packet
    /// simulator), so it is what the bench reports as its event count.
    pub updates: u64,
}

/// Classify the ⊤ set from (flow, bytes) counts: every flow within δf of
/// the maximum.
fn top_set(counts: &[(cebinae_net::FlowId, u64)]) -> Vec<cebinae_net::FlowId> {
    let max = counts.iter().map(|&(_, b)| b).max().unwrap_or(0);
    if max == 0 {
        return Vec::new();
    }
    let thr = max as f64 * (1.0 - DELTA_F);
    counts
        .iter()
        .filter(|&&(_, b)| b as f64 >= thr)
        .map(|&(f, _)| f)
        .collect()
}

/// Replay a trace through a cache at the given round interval and measure
/// detection FPR/FNR against exact ground truth.
pub fn measure(
    trace: &SyntheticTrace,
    stages: usize,
    slots: usize,
    round_interval: Duration,
    trial: u64,
) -> Accuracy {
    let mut rng = experiment_rng("fig13-replay", trial);
    let mut cache = HeavyHitterCache::new(stages, slots, 0xf13 ^ trial);
    let mut t = Time::ZERO;
    let end = Time::ZERO + trace.cfg.duration;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    let mut negatives = 0u64;
    let mut positives = 0u64;
    let mut intervals = 0usize;
    let mut updates = 0u64;
    while t + round_interval <= end {
        let to = t + round_interval;
        let truth = trace.interval_flow_bytes(t, to);
        if truth.is_empty() {
            t = to;
            continue;
        }
        for (flow, size) in interval_packets(&truth, &mut rng) {
            cache.update(flow, size as u64);
            updates += 1;
        }
        let detected_counts = cache.poll_and_reset();
        let truth_top = top_set(&truth);
        let detected_top = top_set(&detected_counts);
        let truth_set: std::collections::HashSet<_> = truth_top.iter().collect();
        let det_set: std::collections::HashSet<_> = detected_top.iter().collect();
        fp += det_set.difference(&truth_set).count() as u64;
        fn_ += truth_set.difference(&det_set).count() as u64;
        positives += truth_set.len() as u64;
        negatives += (truth.len() - truth_set.len()) as u64;
        intervals += 1;
        t = to;
    }
    Accuracy {
        fpr: if negatives > 0 { fp as f64 / negatives as f64 } else { 0.0 },
        fnr: if positives > 0 { fn_ as f64 / positives as f64 } else { 0.0 },
        intervals,
        updates,
    }
}

/// The paper's trace model: cover at least 10 measured intervals; keep the
/// >400k flows/min arrival rate with second-scale durations so thousands
/// of flows are concurrently active per interval (backbone-like
/// concurrency relative to the cache's slot count).
pub fn paper_trace_cfg(round_interval: Duration) -> TraceConfig {
    let duration = Duration(round_interval.as_nanos() * 10).max(Duration::from_secs(2));
    TraceConfig {
        duration,
        aggregate_rate_bps: 10e9,
        flows_per_minute: 400_000.0,
        min_duration: Duration::from_millis(50),
        max_duration: Duration::from_secs(8),
        ..TraceConfig::default()
    }
}

/// A ~100x lighter trace model with the same shape, for determinism tests
/// and bench smoke runs where the paper-scale trace would dominate.
pub fn light_trace_cfg(round_interval: Duration) -> TraceConfig {
    let duration = Duration(round_interval.as_nanos() * 10).max(Duration::from_millis(500));
    TraceConfig {
        duration,
        aggregate_rate_bps: 1e9,
        flows_per_minute: 60_000.0,
        min_duration: Duration::from_millis(50),
        max_duration: Duration::from_secs(2),
        ..TraceConfig::default()
    }
}

/// Cache geometries swept by Figure 13 (number of stages).
const STAGES: [usize; 3] = [1, 2, 4];

/// Core of Figure 13a, parameterized over trace model and sweep size so
/// tests and benches can run scaled-down versions: measure detection
/// accuracy for every (round interval, stages) cell, averaging `trials`
/// independent seeded trials per cell.
///
/// Each (interval, stages, trial) triple is one job on the ctx's trial
/// pool. Per-cell sums are folded **in trial order** during assembly, so
/// the float accumulation — and therefore the rendered table — is
/// byte-identical for any thread count.
pub fn interval_sweep<F>(
    ctx: &Ctx,
    intervals_ms: &[u64],
    slots: usize,
    trials: u64,
    trace_label: &str,
    cfg_for: F,
) -> String
where
    F: Fn(Duration) -> TraceConfig + Sync,
{
    interval_sweep_counted(ctx, intervals_ms, slots, trials, trace_label, cfg_for).0
}

/// [`interval_sweep`] plus the total cache-update count across every
/// (interval, stages, trial) job — the work-rate denominator the bench
/// needs for its events-per-second report.
pub fn interval_sweep_counted<F>(
    ctx: &Ctx,
    intervals_ms: &[u64],
    slots: usize,
    trials: u64,
    trace_label: &str,
    cfg_for: F,
) -> (String, u64)
where
    F: Fn(Duration) -> TraceConfig + Sync,
{
    let mut jobs = Vec::new();
    for &ms in intervals_ms {
        for &stages in &STAGES {
            for trial in 0..trials {
                jobs.push((ms, stages, trial));
            }
        }
    }
    let cfg_for = &cfg_for;
    let results = ctx.pool().map(jobs, |_, (ms, stages, trial)| {
        let interval = Duration::from_millis(ms);
        let mut rng = experiment_rng(trace_label, trial);
        let trace = SyntheticTrace::generate(cfg_for(interval), &mut rng);
        let flows = trace.active_flows(Time::ZERO, Time::ZERO + interval);
        let a = measure(&trace, stages, slots, interval, trial);
        (a.fpr, a.fnr, flows, a.updates)
    });
    let mut total_updates = 0u64;
    let mut t = Table::new(&[
        "interval[ms]", "stages", "FPR[1e-4]", "FNR", "flows/interval",
    ]);
    let mut it = results.into_iter();
    for &ms in intervals_ms {
        for &stages in &STAGES {
            let mut acc = Accuracy::default();
            let mut flows_per_interval = 0usize;
            for _ in 0..trials {
                let (fpr, fnr, flows, updates) = it.next().expect("job/result count mismatch");
                acc.fpr += fpr;
                acc.fnr += fnr;
                flows_per_interval = flows;
                total_updates += updates;
            }
            t.row(vec![
                ms.to_string(),
                stages.to_string(),
                format!("{:.3}", acc.fpr / trials as f64 * 1e4),
                format!("{:.3}", acc.fnr / trials as f64),
                flows_per_interval.to_string(),
            ]);
        }
        eprintln!("fig13a-style sweep: interval {ms}ms done");
    }
    (t.render(), total_updates)
}

/// Core of Figure 13b: sweep per-stage slot count at a fixed round
/// interval, parallelized and assembled exactly like [`interval_sweep`].
pub fn slot_sweep<F>(
    ctx: &Ctx,
    slot_counts: &[usize],
    interval_ms: u64,
    trials: u64,
    trace_label: &str,
    cfg_for: F,
) -> String
where
    F: Fn(Duration) -> TraceConfig + Sync,
{
    let interval = Duration::from_millis(interval_ms);
    let mut jobs = Vec::new();
    for &slots in slot_counts {
        for &stages in &STAGES {
            for trial in 0..trials {
                jobs.push((slots, stages, trial));
            }
        }
    }
    let cfg_for = &cfg_for;
    let results = ctx.pool().map(jobs, |_, (slots, stages, trial)| {
        let mut rng = experiment_rng(trace_label, trial);
        let trace = SyntheticTrace::generate(cfg_for(interval), &mut rng);
        let a = measure(&trace, stages, slots, interval, trial);
        (a.fpr, a.fnr)
    });
    let mut t = Table::new(&["slots", "stages", "FPR[1e-4]", "FNR"]);
    let mut it = results.into_iter();
    for &slots in slot_counts {
        for &stages in &STAGES {
            let mut acc = Accuracy::default();
            for _ in 0..trials {
                let (fpr, fnr) = it.next().expect("job/result count mismatch");
                acc.fpr += fpr;
                acc.fnr += fnr;
            }
            t.row(vec![
                slots.to_string(),
                stages.to_string(),
                format!("{:.3}", acc.fpr / trials as f64 * 1e4),
                format!("{:.3}", acc.fnr / trials as f64),
            ]);
        }
        eprintln!("fig13b-style sweep: slots {slots} done");
    }
    t.render()
}

/// Figure 13a: FPR/FNR vs round interval (2048 slots).
pub fn fig13a(ctx: &Ctx) -> String {
    let trials = if ctx.full { 100 } else { 10 };
    interval_sweep(
        ctx,
        &[10, 20, 40, 60, 80, 100],
        2048,
        trials,
        "fig13a-trace",
        paper_trace_cfg,
    )
}

/// Figure 13b: FPR/FNR vs slot count (100 ms interval).
pub fn fig13b(ctx: &Ctx) -> String {
    let trials = if ctx.full { 100 } else { 10 };
    slot_sweep(
        ctx,
        &[512, 1024, 2048, 4096],
        100,
        trials,
        "fig13b-trace",
        paper_trace_cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(trial: u64) -> SyntheticTrace {
        let mut rng = experiment_rng("fig13-test", trial);
        SyntheticTrace::generate(
            TraceConfig {
                duration: Duration::from_millis(500),
                aggregate_rate_bps: 1e9,
                flows_per_minute: 60_000.0, // 500 flows over 0.5 s
                ..TraceConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn perfect_cache_has_zero_error() {
        // A cache with far more slots than flows never misses.
        let trace = tiny_trace(0);
        let a = measure(&trace, 4, 1 << 14, Duration::from_millis(50), 0);
        assert!(a.intervals >= 9);
        assert_eq!(a.fnr, 0.0, "oversized cache cannot miss");
        assert_eq!(a.fpr, 0.0);
    }

    #[test]
    fn tiny_cache_has_high_fnr() {
        let trace = tiny_trace(1);
        let small = measure(&trace, 1, 16, Duration::from_millis(50), 1);
        let big = measure(&trace, 2, 1024, Duration::from_millis(50), 1);
        assert!(
            small.fnr > big.fnr,
            "fewer slots must miss more: {} vs {}",
            small.fnr,
            big.fnr
        );
    }

    #[test]
    fn more_stages_reduce_fnr() {
        let mut f1 = 0.0;
        let mut f4 = 0.0;
        for trial in 0..5 {
            let trace = tiny_trace(trial + 10);
            f1 += measure(&trace, 1, 64, Duration::from_millis(50), trial).fnr;
            f4 += measure(&trace, 4, 64, Duration::from_millis(50), trial).fnr;
        }
        assert!(f4 <= f1, "4 stages must not be worse: {f4} vs {f1}");
    }

    #[test]
    fn sweep_output_is_thread_count_invariant() {
        let serial = Ctx::serial(false, 1);
        let parallel = serial.clone().with_threads(4);
        let a = interval_sweep(&serial, &[20], 64, 3, "fig13-par-test", light_trace_cfg);
        let b = interval_sweep(&parallel, &[20], 64, 3, "fig13-par-test", light_trace_cfg);
        assert_eq!(a, b, "thread count leaked into rendered output");
    }

    #[test]
    fn counted_sweep_reports_positive_work() {
        let ctx = Ctx::serial(false, 1);
        let (table, updates) =
            interval_sweep_counted(&ctx, &[20], 64, 2, "fig13-count-test", light_trace_cfg);
        assert!(updates > 0, "a replayed trace must perform cache updates");
        let plain = interval_sweep(&ctx, &[20], 64, 2, "fig13-count-test", light_trace_cfg);
        assert_eq!(table, plain, "counted variant must not change the table");
    }

    #[test]
    fn top_set_applies_delta_f() {
        use cebinae_net::FlowId;
        let counts = vec![
            (FlowId(0), 1000u64),
            (FlowId(1), 995),
            (FlowId(2), 800),
        ];
        let t = top_set(&counts);
        assert_eq!(t.len(), 2, "995 >= 0.99 * 1000, 800 is not");
        assert!(top_set(&[]).is_empty());
    }
}
