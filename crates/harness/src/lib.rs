//! # cebinae-harness
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the corresponding rows or series, plus
//! design-choice ablations. The `cebinae-experiments` binary is the CLI
//! front end; the library functions are also driven by the bench targets.
//!
//! Durations are scaled by default (single-core friendly); set
//! `CEBINAE_FULL=1` or pass `--full` for the paper's 100 s runs and
//! 100-trial Figure 13 sweeps.
//!
//! Independent seeded trials fan out across a [`cebinae_par::TrialPool`]
//! sized by `CEBINAE_THREADS` (or `--threads`); results are always
//! collected in job order, so experiment output is byte-identical for any
//! thread count.

pub mod ablations;
pub mod chaos;
pub mod extensions;
pub mod fig11;
pub mod fig2;
pub mod fig13;
pub mod figures;
pub mod runner;
pub mod table2;
pub mod table3;

pub use runner::{run_with_params, Ctx, DumbbellRun, RunMetrics, Table};

/// All experiment names accepted by the CLI and bench harness.
pub const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "table2", "fig7", "fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12", "table3",
    "fig13a", "fig13b", "ablation-p", "ablation-perflow", "ablation-disciplines", "ablation-ecn",
    "ext-fct", "ext-scalability", "chaos",
];

/// Dispatch one experiment by name.
pub fn run_experiment(name: &str, ctx: &Ctx, rows: Option<&[usize]>) -> Result<String, String> {
    Ok(match name {
        "fig1" => figures::fig1(ctx),
        "fig2" => fig2::run(),
        "table2" => table2::run(ctx, rows),
        "fig7" => figures::fig7(ctx),
        "fig8a" => figures::fig8(ctx, false),
        "fig8b" => figures::fig8(ctx, true),
        "fig9" => figures::fig9(ctx),
        "fig10" => figures::fig10(ctx),
        "fig11" => fig11::run(ctx),
        "fig12" => figures::fig12(ctx),
        "table3" => table3::run(ctx),
        "fig13a" => fig13::fig13a(ctx),
        "fig13b" => fig13::fig13b(ctx),
        "ablation-p" => ablations::p_sensitivity(ctx),
        "ablation-perflow" => ablations::per_flow_top(ctx),
        "ablation-disciplines" => ablations::disciplines(ctx),
        "ablation-ecn" => ablations::ecn(ctx),
        "ext-fct" => extensions::fct(ctx),
        "ext-scalability" => extensions::scalability(),
        "chaos" => chaos::run(ctx),
        other => return Err(format!("unknown experiment '{other}'; known: {EXPERIMENTS:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_an_error() {
        let ctx = Ctx::serial(false, 1);
        assert!(run_experiment("fig99", &ctx, None).is_err());
    }

    #[test]
    fn table3_runs_instantly() {
        let ctx = Ctx::serial(false, 1);
        let out = run_experiment("table3", &ctx, None).unwrap();
        assert!(out.contains("SRAM"));
    }

    #[test]
    fn experiment_list_is_complete() {
        for name in EXPERIMENTS {
            assert!(
                matches!(*name, "fig1" | "fig2" | "table2" | "fig7" | "fig8a" | "fig8b" | "fig9"
                    | "fig10" | "fig11" | "fig12" | "table3" | "fig13a" | "fig13b"
                    | "ablation-p" | "ablation-perflow" | "ablation-disciplines"
                    | "ablation-ecn" | "ext-fct" | "ext-scalability" | "chaos"),
                "{name} not handled"
            );
        }
    }
}
