//! The chaos experiment: the paper's evaluation under adversity.
//!
//! The paper's tables run on clean links; this experiment replays the
//! standard mixed-CCA dumbbell under each fault family of
//! `cebinae-faults` (plus whatever plan the user armed via
//! `CEBINAE_FAULTS` / `--faults`) and reports what the adversity costs:
//! goodput, fairness, and the injected-drop ledger scraped from the
//! `sys:faults` telemetry scope. Everything is seed-deterministic, so a
//! surprising row is a replayable row.

use cebinae_engine::{Discipline, DumbbellFlow};
use cebinae_faults::FaultPlan;
use cebinae_transport::CcKind;

use crate::runner::{mbps, Ctx, DumbbellRun, Table};

/// Last `sys:faults` value of `name` in a telemetry export, or 0.
fn fault_counter(ndjson: Option<&str>, name: &str) -> u64 {
    let Some(nd) = ndjson else { return 0 };
    let key = format!("\"name\":\"{name}\"");
    nd.lines()
        .filter(|l| l.contains("\"scope\":\"sys:faults\"") && l.contains(&key))
        .filter_map(|l| {
            let rest = &l[l.find("\"v\":")? + 4..];
            rest[..rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len())]
                .parse()
                .ok()
        })
        .last()
        .unwrap_or(0)
}

/// The fault plans swept by the experiment: always a clean baseline, then
/// either the user's armed plan or the default family sweep.
fn plans(ctx: &Ctx) -> Vec<(String, FaultPlan)> {
    let mut out = vec![("clean".to_string(), FaultPlan::default())];
    if !ctx.faults.is_empty() {
        out.push(("custom".to_string(), ctx.faults.clone()));
        return out;
    }
    for spec in ["loss:0.01", "burst:0.25", "reorder:0.02", "dup:0.01", "corrupt:0.005", "flap:500+200", "stall:400+300"] {
        let plan = FaultPlan::parse(spec).expect("built-in chaos spec parses");
        out.push((spec.to_string(), plan));
    }
    out
}

/// Mixed-CCA dumbbell under every fault plan, per discipline column set.
pub fn run(ctx: &Ctx) -> String {
    let duration = ctx.secs(5, 30);
    let flows = vec![
        DumbbellFlow::new(CcKind::NewReno, 20),
        DumbbellFlow::new(CcKind::Cubic, 30),
        DumbbellFlow::new(CcKind::Vegas, 40),
        DumbbellFlow::new(CcKind::Bbr, 25),
        DumbbellFlow::new(CcKind::Bic, 35),
    ];
    let mut t = Table::new(&[
        "faults",
        "goodput[Mbps]",
        "jfi",
        "min-flow[Mbps]",
        "inj-drops",
        "corrupt-rx",
        "dups",
    ]);
    let jobs = plans(ctx);
    let rows = ctx.pool().map(jobs, |_, (label, plan)| {
        let m = DumbbellRun::new(25_000_000)
            .buffer_mtus(150)
            .discipline(Discipline::Cebinae)
            .duration(duration)
            .seed(ctx.seed)
            .scheduler(ctx.sched)
            .telemetry(true)
            .faults(plan)
            .run(&flows);
        let nd = m.result.telemetry.as_deref();
        let min_flow = m.per_flow_bps.iter().cloned().fold(f64::INFINITY, f64::min);
        let cells = vec![
            mbps(m.goodput_bps),
            format!("{:.4}", m.jfi),
            mbps(min_flow),
            fault_counter(nd, "injected_drop_pkts").to_string(),
            fault_counter(nd, "corrupt_rx_drops").to_string(),
            fault_counter(nd, "dup_pkts").to_string(),
        ];
        (label, cells, m.result.telemetry)
    });
    let exports: Vec<Option<&str>> = rows.iter().map(|(_, _, nd)| nd.as_deref()).collect();
    ctx.export_telemetry("chaos", &exports);
    for (label, cells, _) in rows {
        let mut row = vec![label];
        row.extend(cells);
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_table_has_a_row_per_family_plus_clean() {
        let ctx = Ctx::serial(false, 1);
        let out = run(&ctx);
        for label in ["clean", "loss", "burst", "reorder", "dup", "corrupt", "flap", "stall"] {
            assert!(out.contains(label), "missing row {label}:\n{out}");
        }
        // The clean row injects nothing; the loss row must have a ledger.
        let clean_row = out.lines().find(|l| l.contains("clean")).unwrap();
        assert!(clean_row.split_whitespace().rev().take(3).all(|c| c == "0"), "{clean_row}");
    }

    #[test]
    fn armed_plan_replaces_the_family_sweep() {
        let ctx = Ctx::serial(false, 1).with_faults(FaultPlan::uniform_loss(0.02));
        let out = run(&ctx);
        assert!(out.contains("custom"), "{out}");
        assert!(!out.contains("burst"), "family sweep should be replaced:\n{out}");
    }

    #[test]
    fn fault_counter_scrapes_last_value() {
        let nd = "{\"t\":1,\"scope\":\"sys:faults\",\"name\":\"injected_drop_pkts\",\"kind\":\"counter\",\"v\":3}\n\
                  {\"t\":2,\"scope\":\"sys:faults\",\"name\":\"injected_drop_pkts\",\"kind\":\"counter\",\"v\":7}\n";
        assert_eq!(fault_counter(Some(nd), "injected_drop_pkts"), 7);
        assert_eq!(fault_counter(Some(nd), "dup_pkts"), 0);
        assert_eq!(fault_counter(None, "dup_pkts"), 0);
    }
}
