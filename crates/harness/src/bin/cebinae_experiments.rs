//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! cebinae-experiments <experiment>... [--full] [--rows 1,2,5] [--seed N] [--threads N]
//!                                     [--telemetry PATH] [--faults SPEC]
//! cebinae-experiments all [--full]
//! cebinae-experiments list
//! ```

use cebinae_harness::{run_experiment, Ctx, EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: cebinae-experiments <experiment>... [--full] [--rows 1,2,5] [--seed N] [--threads N]\n\
                                    [--telemetry PATH] [--faults SPEC]\n\
         \n\
         experiments: {}\n\
         special:     all (every experiment), list (print names)\n\
         flags:       --full      paper-duration runs (100 s, 100 trials)\n\
                      --rows      table2 row filter (comma-separated ids)\n\
                      --seed      RNG seed / trial index (default 1)\n\
                      --threads   trial-pool workers (default CEBINAE_THREADS\n\
                                  or the machine's cores; output is identical\n\
                                  for any value)\n\
                      --telemetry append deterministic NDJSON telemetry to\n\
                                  PATH (also: CEBINAE_TELEMETRY=PATH)\n\
                      --faults    fault plan for fault-aware experiments, e.g.\n\
                                  'burst:0.3,flap:500+200' (also:\n\
                                  CEBINAE_FAULTS=SPEC; see the chaos experiment)",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut ctx = Ctx::from_env();
    let mut rows: Option<Vec<usize>> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => ctx.full = true,
            "--rows" => {
                let v = it.next().unwrap_or_else(|| usage());
                rows = Some(
                    v.split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--seed" => {
                ctx.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                ctx.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--telemetry" => {
                ctx.telemetry = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--faults" => {
                let spec = it.next().unwrap_or_else(|| usage());
                match cebinae_faults::FaultPlan::parse(&spec) {
                    Ok(plan) => ctx.faults = plan,
                    Err(e) => {
                        eprintln!("--faults: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "all" => experiments.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "-h" | "--help" => usage(),
            name => experiments.push(name.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    for name in experiments {
        println!("==== {name} {}====", if ctx.full { "(full) " } else { "" });
        let t0 = std::time::Instant::now();
        match run_experiment(&name, &ctx, rows.as_deref()) {
            Ok(out) => {
                println!("{out}");
                println!("[{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
