//! Figure experiments: 1, 7, 8a/8b, 9, 10, 12 (single-bottleneck) — each
//! regenerates the series/bars/CDFs the paper plots.

use cebinae_engine::{Discipline, DumbbellFlow};
use cebinae_metrics::{cdf, jfi};
use cebinae_sim::Time;
use cebinae_transport::CcKind;

use crate::runner::{mbps, Ctx, DumbbellRun, Table};

/// Figure 1: two NewReno flows (RTT 20.4 / 40 ms) over 1 Gbps, goodput
/// time series under FIFO and Cebinae, plus Cebinae's saturation state.
pub fn fig1(ctx: &Ctx) -> String {
    let flows = vec![
        DumbbellFlow::new(CcKind::NewReno, 20),
        DumbbellFlow::new(CcKind::NewReno, 40),
    ];
    let duration = ctx.secs(50, 50); // the paper plots 50 s
    let rate = 1_000_000_000;
    let buffer = 850;

    let run = DumbbellRun::new(rate)
        .buffer_mtus(buffer)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched);
    let mut runs = ctx.pool().map(
        vec![Discipline::Fifo, Discipline::Cebinae],
        |_, d| run.clone().discipline(d).run(&flows),
    );
    ctx.export_runs("fig1", &runs);
    let ceb = runs.pop().expect("two runs");
    let fifo = runs.pop().expect("two runs");

    let mut t = Table::new(&[
        "t[s]", "FIFO-f0[MBps]", "FIFO-f1[MBps]", "Ceb-f0[MBps]", "Ceb-f1[MBps]", "Ceb-state",
    ]);
    let fifo_rates = fifo.result.goodput.rates();
    let ceb_rates = ceb.result.goodput.rates();
    for (i, ((ts, fr), (_, cr))) in fifo_rates.iter().zip(&ceb_rates).enumerate() {
        // One row per second (samples are 100 ms).
        if i % 10 != 9 {
            continue;
        }
        let sat = ceb
            .result
            .saturated_series
            .iter()
            .rev()
            .find(|(st, _)| st <= ts)
            .map(|(_, s)| s[0])
            .unwrap_or(false);
        t.row(vec![
            format!("{:.0}", ts.as_secs_f64()),
            format!("{:.1}", fr[0] / 1e6),
            format!("{:.1}", fr[1] / 1e6),
            format!("{:.1}", cr[0] / 1e6),
            format!("{:.1}", cr[1] / 1e6),
            if sat { "saturated" } else { "unsat" }.into(),
        ]);
    }
    format!(
        "{}\nsummary: FIFO JFI {:.3}, Cebinae JFI {:.3}; FIFO goodput {} Mbps, Cebinae {} Mbps\n",
        t.render(),
        fifo.jfi,
        ceb.jfi,
        mbps(fifo.goodput_bps),
        mbps(ceb.goodput_bps)
    )
}

/// Figure 7: 16 Vegas + 1 NewReno over 100 Mbps — per-flow goodput bars
/// under FIFO and Cebinae.
pub fn fig7(ctx: &Ctx) -> String {
    let mut flows: Vec<_> = (0..16).map(|_| DumbbellFlow::new(CcKind::Vegas, 50)).collect();
    flows.push(DumbbellFlow::new(CcKind::NewReno, 50));
    let duration = ctx.secs(40, 100);
    let run = DumbbellRun::new(100_000_000)
        .buffer_mtus(850)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched);
    let mut runs = ctx.pool().map(
        vec![Discipline::Fifo, Discipline::Cebinae],
        |_, d| run.clone().discipline(d).run(&flows),
    );
    ctx.export_runs("fig7", &runs);
    let ceb = runs.pop().expect("two runs");
    let fifo = runs.pop().expect("two runs");
    let mut t = Table::new(&["flow", "cca", "FIFO[Mbps]", "Cebinae[Mbps]"]);
    for i in 0..flows.len() {
        t.row(vec![
            i.to_string(),
            flows[i].cc.label().into(),
            format!("{:.2}", fifo.per_flow_bps[i] / 1e6),
            format!("{:.2}", ceb.per_flow_bps[i] / 1e6),
        ]);
    }
    format!(
        "{}\nsummary: FIFO JFI {:.3} -> Cebinae JFI {:.3} (paper: 0.093 -> 0.984)\n",
        t.render(),
        fifo.jfi,
        ceb.jfi
    )
}

/// Figures 8a/8b: goodput CDFs. 8a: 128 NewReno vs 2 BBR @ 1 Gbps;
/// 8b: 128 NewReno (100 ms) vs 4 Vegas (64 ms) @ 1 Gbps.
pub fn fig8(ctx: &Ctx, variant_b: bool) -> String {
    let (flows, buffer, name) = if variant_b {
        let mut f: Vec<_> = (0..128)
            .map(|_| DumbbellFlow::new(CcKind::NewReno, 100))
            .collect();
        f.extend((0..4).map(|_| DumbbellFlow::new(CcKind::Vegas, 64)));
        (f, 8500, "8b: 128 NewReno vs 4 Vegas")
    } else {
        let mut f: Vec<_> = (0..128)
            .map(|_| DumbbellFlow::new(CcKind::NewReno, 50))
            .collect();
        f.extend((0..2).map(|_| DumbbellFlow::new(CcKind::Bbr, 50)));
        (f, 4200, "8a: 128 NewReno vs 2 BBR")
    };
    let duration = ctx.secs(15, 100);
    let run = DumbbellRun::new(1_000_000_000)
        .buffer_mtus(buffer)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched);
    let mut runs = ctx.pool().map(
        vec![Discipline::Fifo, Discipline::Cebinae],
        |_, d| run.clone().discipline(d).run(&flows),
    );
    ctx.export_runs(if variant_b { "fig8b" } else { "fig8a" }, &runs);
    let ceb = runs.pop().expect("two runs");
    let fifo = runs.pop().expect("two runs");
    let mut out = format!("Figure {name} — goodput CDF [Mbps]\n");
    let mut t = Table::new(&["pct", "FIFO", "Cebinae"]);
    let f_cdf = cdf(&fifo.per_flow_bps);
    let c_cdf = cdf(&ceb.per_flow_bps);
    for q in [5, 25, 50, 75, 90, 99, 100] {
        let pick = |c: &[(f64, f64)]| {
            c.iter()
                .find(|(_, p)| *p * 100.0 >= q as f64)
                .map(|(v, _)| *v)
                .unwrap_or(c.last().unwrap().0)
        };
        t.row(vec![
            format!("p{q}"),
            format!("{:.2}", pick(&f_cdf) / 1e6),
            format!("{:.2}", pick(&c_cdf) / 1e6),
        ]);
    }
    out.push_str(&t.render());
    let agg = |m: &crate::runner::RunMetrics, n: usize| {
        m.per_flow_bps[m.per_flow_bps.len() - n..]
            .iter()
            .sum::<f64>()
            / 1e6
    };
    let minority = if variant_b { 4 } else { 2 };
    out.push_str(&format!(
        "minority-CCA aggregate: FIFO {:.1} Mbps -> Cebinae {:.1} Mbps\nJFI: FIFO {:.3} -> Cebinae {:.3}\n",
        agg(&fifo, minority),
        agg(&ceb, minority),
        fifo.jfi,
        ceb.jfi
    ));
    out
}

/// Figure 9: RTT-asymmetry sweep — 4 Cubic @256 ms vs 4 Cubic @{16..256} ms
/// over 400 Mbps / 3 MB buffer; JFI and goodput per discipline.
pub fn fig9(ctx: &Ctx) -> String {
    let duration = ctx.secs(40, 100);
    let buffer_mtus = 2000; // 3 MB
    let mut t = Table::new(&[
        "rtt2[ms]", "JFI-FIFO", "JFI-FQ", "JFI-Ceb", "good-FIFO", "good-FQ", "good-Ceb",
    ]);
    // One job per (rtt2, discipline) cell — the whole 5x3 grid runs at
    // once; rows are assembled in sweep order afterwards.
    const RTT2: [u64; 5] = [16, 32, 64, 128, 256];
    let mut jobs = Vec::new();
    for &rtt2 in &RTT2 {
        for &d in Discipline::PAPER.iter() {
            jobs.push((rtt2, d));
        }
    }
    let run = DumbbellRun::new(400_000_000)
        .buffer_mtus(buffer_mtus)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched);
    let results = ctx.pool().map(jobs, |_, (rtt2, d)| {
        let mut flows: Vec<_> = (0..4).map(|_| DumbbellFlow::new(CcKind::Cubic, 256)).collect();
        flows.extend((0..4).map(|_| DumbbellFlow::new(CcKind::Cubic, rtt2)));
        run.clone().discipline(d).run(&flows)
    });
    ctx.export_runs("fig9", &results);
    for (i, &rtt2) in RTT2.iter().enumerate() {
        let cells = &results[i * 3..i * 3 + 3];
        t.row(vec![
            rtt2.to_string(),
            format!("{:.3}", cells[0].jfi),
            format!("{:.3}", cells[1].jfi),
            format!("{:.3}", cells[2].jfi),
            mbps(cells[0].goodput_bps),
            mbps(cells[1].goodput_bps),
            mbps(cells[2].goodput_bps),
        ]);
    }
    t.render()
}

/// Figure 10: JFI time series as flows join — 32 Vegas stable, a NewReno
/// joins at ~5 s and a Cubic at ~25 s, 100 Mbps bottleneck.
pub fn fig10(ctx: &Ctx) -> String {
    let duration = ctx.secs(50, 50);
    let mut flows: Vec<_> = (0..32).map(|_| DumbbellFlow::new(CcKind::Vegas, 40)).collect();
    flows.push(DumbbellFlow::new(CcKind::NewReno, 40).starting_at(Time::from_secs(5)));
    flows.push(DumbbellFlow::new(CcKind::Cubic, 40).starting_at(Time::from_secs(25)));

    let run = DumbbellRun::new(100_000_000)
        .buffer_mtus(850)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched);
    let runs = ctx.pool().map(Discipline::PAPER.to_vec(), |_, d| {
        run.clone().discipline(d).run(&flows)
    });
    ctx.export_runs("fig10", &runs);

    let mut t = Table::new(&["t[s]", "JFI-FIFO", "JFI-FQ", "JFI-Ceb"]);
    // Per-second JFI over flows that have started (the paper measures
    // goodput JFI per second).
    let series: Vec<Vec<(Time, f64)>> = runs
        .iter()
        .map(|r| {
            r.result
                .goodput
                .rates()
                .into_iter()
                .map(|(ts, rates)| {
                    let active: Vec<f64> = rates
                        .iter()
                        .zip(&flows)
                        .filter(|(_, f)| f.start + cebinae_sim::Duration::from_secs(1) < ts)
                        .map(|(r, _)| *r)
                        .collect();
                    (ts, jfi(&active))
                })
                .collect()
        })
        .collect();
    for i in (9..series[0].len()).step_by(10) {
        t.row(vec![
            format!("{:.0}", series[0][i].0.as_secs_f64()),
            format!("{:.3}", series[0][i].1),
            format!("{:.3}", series[1][i].1),
            format!("{:.3}", series[2][i].1),
        ]);
    }
    t.render()
}

/// Figure 12: sensitivity to δp = δf = τ for 16 NewReno vs 1 Cubic over
/// 100 Mbps; JFI and goodput vs the thresholds, with FIFO/FQ references.
pub fn fig12(ctx: &Ctx) -> String {
    let mut flows: Vec<_> = (0..16).map(|_| DumbbellFlow::new(CcKind::NewReno, 50)).collect();
    flows.push(DumbbellFlow::new(CcKind::Cubic, 50));
    let duration = ctx.secs(20, 100);
    let rate = 100_000_000;
    let buffer = 420;

    // References and the 8-point threshold sweep are all independent: one
    // job each, run as a single batch.
    const PCTS: [f64; 8] = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0];
    enum Spec {
        Reference(Discipline),
        Threshold(f64),
    }
    let mut specs = vec![
        Spec::Reference(Discipline::Fifo),
        Spec::Reference(Discipline::FqCoDel),
    ];
    specs.extend(PCTS.iter().map(|&pct| Spec::Threshold(pct)));
    let base = DumbbellRun::new(rate)
        .buffer_mtus(buffer)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched);
    let mut results = ctx.pool().map(specs, |_, spec| match spec {
        Spec::Reference(d) => base.clone().discipline(d).run(&flows),
        Spec::Threshold(pct) => {
            let th = pct / 100.0;
            let mut run = base.clone().discipline(Discipline::Cebinae);
            run.params_mut().cebinae_thresholds = (th, th, th);
            run.run(&flows)
        }
    });
    ctx.export_runs("fig12", &results);
    let sweep = results.split_off(2);
    let fq = results.pop().expect("two references");
    let fifo = results.pop().expect("two references");

    let mut t = Table::new(&["threshold[%]", "JFI", "goodput[Mbps]"]);
    for (pct, m) in PCTS.iter().zip(&sweep) {
        t.row(vec![
            format!("{pct}"),
            format!("{:.3}", m.jfi),
            mbps(m.goodput_bps),
        ]);
    }
    format!(
        "{}\nreferences: FIFO JFI {:.3} goodput {} | FQ JFI {:.3} goodput {}\n",
        t.render(),
        fifo.jfi,
        mbps(fifo.goodput_bps),
        fq.jfi,
        mbps(fq.goodput_bps)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        Ctx::serial(false, 1)
    }

    #[test]
    fn fig1_produces_table_and_summary() {
        // Run a miniature fig1 directly via the runner to keep it fast.
        let flows = vec![
            DumbbellFlow::new(CcKind::NewReno, 20),
            DumbbellFlow::new(CcKind::NewReno, 40),
        ];
        let m = DumbbellRun::new(100_000_000)
            .buffer_mtus(350)
            .discipline(Discipline::Cebinae)
            .duration(cebinae_sim::Duration::from_secs(4))
            .run(&flows);
        assert_eq!(m.per_flow_bps.len(), 2);
        assert!(m.goodput_bps > 10e6);
    }

    #[test]
    fn fig8_cdf_structure() {
        let xs = vec![1.0, 2.0, 3.0, 10.0];
        let c = cdf(&xs);
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[ignore = "several minutes; run with --ignored or via the bench harness"]
    fn full_fig7_improves_fairness() {
        let out = fig7(&tiny_ctx());
        assert!(out.contains("summary"));
    }
}
