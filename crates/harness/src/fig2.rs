//! Figure 2: the paper's two worked examples of unfairness, reproduced
//! with the exact water-filling solver and the §3.2 fluid model of
//! Cebinae's taxation dynamics.
//!
//! (2a) a single 10-unit bottleneck where one flow acquires bandwidth 6×
//! as effectively as four competitors; (2b) a multi-bottleneck network
//! where flow A out-competes B 10× and C 100×.

use cebinae::{rounds_to_converge, FluidFlow, FluidModel};
use cebinae_metrics::{water_filling, MaxMinFlow};

use crate::runner::Table;

pub fn run() -> String {
    let mut out = String::new();

    // ---- Figure 2a ----
    out.push_str("Figure 2a — single bottleneck, one 6x-aggressive flow\n\n");
    let ideal = water_filling(
        &[10.0],
        &(0..5).map(|_| MaxMinFlow::through(vec![0])).collect::<Vec<_>>(),
    );
    let mut model = FluidModel {
        capacities: vec![10.0],
        flows: (0..5)
            .map(|i| FluidFlow {
                links: vec![0],
                weight: if i == 0 { 6.0 } else { 1.0 },
                rate: if i == 0 { 6.0 } else { 1.0 },
            })
            .collect(),
        tau: 0.01,
        delta_p: 0.01,
        delta_f: 0.01,
    };
    let mut t = Table::new(&["round", "aggressive", "others(avg)", "utilization"]);
    let checkpoints = [0usize, 10, 40, 100, 200, 400, 1000];
    let mut at = 0usize;
    for &round in &checkpoints {
        for _ in at..round {
            model.step();
        }
        at = round;
        t.row(vec![
            round.to_string(),
            format!("{:.2}", model.flows[0].rate),
            format!(
                "{:.2}",
                model.flows[1..].iter().map(|f| f.rate).sum::<f64>() / 4.0
            ),
            format!("{:.2}", model.rates().iter().sum::<f64>()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nideal max-min: {:?}; closed-form rounds for 6 -> 2 at τ=1%: {:.0}\n\n",
        ideal,
        rounds_to_converge(6.0, 2.0, 0.01)
    ));

    // ---- Figure 2b ----
    out.push_str("Figure 2b — multiple bottlenecks (A = 10x B = 100x C)\n\n");
    // Links: l2 (cap 10) carries B and C; l3 (cap 20) carries A and B.
    // Max-min: C and B split l2 (5 each); A gets l3's remainder (15).
    let caps = vec![20.0, 10.0];
    let ideal_b = water_filling(
        &caps,
        &[
            MaxMinFlow::through(vec![0]),
            MaxMinFlow::through(vec![0, 1]),
            MaxMinFlow::through(vec![1]),
        ],
    );
    let mut model = FluidModel {
        capacities: caps,
        flows: vec![
            FluidFlow { links: vec![0], weight: 100.0, rate: 18.0 },
            FluidFlow { links: vec![0, 1], weight: 10.0, rate: 1.8 },
            FluidFlow { links: vec![1], weight: 1.0, rate: 0.18 },
        ],
        tau: 0.01,
        delta_p: 0.01,
        delta_f: 0.01,
    };
    let rounds = model.run_to_fixpoint(1e-7, 200_000);
    let r = model.rates();
    out.push_str(&format!(
        "initial {{A:18.0, B:1.8, C:0.18}} -> fluid fixpoint after {rounds} rounds: \
         {{A:{:.2}, B:{:.2}, C:{:.2}}}\nideal max-min: {{A:{:.1}, B:{:.1}, C:{:.1}}}\n",
        r[0], r[1], r[2], ideal_b[0], ideal_b[1], ideal_b[2]
    ));
    out
}


#[cfg(test)]
mod tests {
    #[test]
    fn fig2_renders_both_examples() {
        let out = super::run();
        assert!(out.contains("Figure 2a"));
        assert!(out.contains("Figure 2b"));
        assert!(out.contains("ideal max-min"));
    }
}
