//! Table 3: data-plane resource usage, from the calibrated analytic model
//! (no Tofino toolchain is available; see DESIGN.md), plus the Equation 1
//! scalability comparison of §5.5.

use cebinae::resources::{
    model_usage, scalability_point, table3_rows, utilization_fractions, SwitchProfile,
};

use crate::runner::{Ctx, Table};

pub fn run(ctx: &Ctx) -> String {
    // The two sections are independent computations; run them as one job
    // batch and concatenate in section order.
    let jobs: Vec<Box<dyn FnOnce() -> String + Send>> =
        vec![Box::new(resource_section), Box::new(scalability_section)];
    ctx.pool().run(jobs).concat()
}

fn resource_section() -> String {
    let mut out = String::new();
    out.push_str("Table 3 — modeled Tofino resource usage (published values in parentheses)\n");
    let mut t = Table::new(&[
        "cache-stages", "pipeline", "PHV[b]", "SRAM[KB]", "TCAM[KB]", "VLIW", "queues",
    ]);
    for (published, modeled) in table3_rows() {
        t.row(vec![
            modeled.cache_stages.to_string(),
            format!("{} ({})", modeled.pipeline_stages, published.pipeline_stages),
            format!("{} ({})", modeled.phv_bits, published.phv_bits),
            format!("{} ({})", modeled.sram_kb, published.sram_kb),
            format!("{} ({})", modeled.tcam_kb, published.tcam_kb),
            format!("{} ({})", modeled.vliw_instrs, published.vliw_instrs),
            format!("{} ({})", modeled.queues, published.queues),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nutilization of a 32-port Tofino-class switch (2-stage config):\n");
    let profile = SwitchProfile::tofino32();
    let usage = model_usage(2, 4096, 32);
    for (name, frac) in utilization_fractions(&usage, &profile) {
        out.push_str(&format!("  {name:16} {:.1}%\n", frac * 100.0));
    }
    out
}

fn scalability_section() -> String {
    let mut out = String::new();
    out.push_str("\nEquation 1 scalability (queues needed per flow-buffer requirement):\n");
    let mut t2 = Table::new(&[
        "scenario", "flows", "buffer_req", "AFQ queues @BpR=12KB", "AFQ BpR @32q", "Cebinae queues",
    ]);
    for (name, flows, buf) in [
        ("DC 10G/100us", 1_000u64, 125_000u64),
        ("DC 100G/1ms", 10_000, 12_500_000),
        ("WAN 10G/100ms", 400_000, 125_000_000),
        ("WAN 100G/200ms", 1_000_000, 2_500_000_000),
    ] {
        let p = scalability_point(flows, buf, 12_000, 32);
        t2.row(vec![
            name.into(),
            p.flows.to_string(),
            format!("{:.1}MB", p.buffer_req_bytes as f64 / 1e6),
            p.afq_queues_needed.to_string(),
            format!("{:.1}KB", p.afq_bpr_needed as f64 / 1e3),
            p.cebinae_queues.to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_renders_all_sections() {
        let out = run(&Ctx::serial(false, 1));
        assert!(out.contains("Table 3"));
        assert!(out.contains("2448"));
        assert!(out.contains("Equation 1"));
        assert!(out.contains("Cebinae queues"));
    }

    #[test]
    fn table3_is_thread_count_invariant() {
        let serial = run(&Ctx::serial(false, 1));
        let parallel = run(&Ctx::serial(false, 1).with_threads(4));
        assert_eq!(serial, parallel);
    }
}
