//! Table 2: throughput, goodput, and JFI for 25 network configurations
//! (bandwidth × RTT set × buffer × CCA mix) under FIFO, FQ, and Cebinae.

use cebinae_engine::{cca_mix, Discipline, DumbbellFlow};
use cebinae_transport::CcKind;

use crate::runner::{mbps, Ctx, DumbbellRun, Table};

/// One Table 2 row specification.
#[derive(Clone, Debug)]
pub struct Row {
    pub id: usize,
    pub rate_bps: u64,
    pub rtts_ms: &'static [u64],
    pub buffer_mtus: u64,
    pub mix: &'static [(CcKind, usize)],
}

/// The paper's 25 configurations, row for row.
pub fn rows() -> Vec<Row> {
    use CcKind::*;
    const M100: u64 = 100_000_000;
    const G1: u64 = 1_000_000_000;
    const G10: u64 = 10_000_000_000;
    let specs: [(u64, &'static [u64], u64, &'static [(CcKind, usize)]); 25] = [
        (M100, &[20, 28], 250, &[(NewReno, 2), (NewReno, 8)]),
        (M100, &[20, 40], 350, &[(Cubic, 8), (Cubic, 2)]),
        (M100, &[20, 60], 500, &[(Vegas, 2), (Vegas, 8)]),
        (M100, &[200], 1700, &[(NewReno, 16), (Cubic, 1)]),
        (M100, &[100], 850, &[(NewReno, 16), (Cubic, 1)]),
        (M100, &[50], 420, &[(NewReno, 16), (Cubic, 1)]),
        (M100, &[50], 420, &[(Vegas, 16), (Cubic, 1)]),
        (M100, &[100], 850, &[(Vegas, 16), (NewReno, 1)]),
        (M100, &[100], 850, &[(Vegas, 128), (NewReno, 1)]),
        (M100, &[60], 500, &[(Vegas, 8), (NewReno, 8), (Cubic, 2)]),
        (G1, &[5], 420, &[(NewReno, 32), (Cubic, 8)]),
        (G1, &[10], 850, &[(Vegas, 128), (Cubic, 1)]),
        (G1, &[10], 850, &[(Vegas, 1024), (Cubic, 2)]),
        (G1, &[50], 4200, &[(NewReno, 128), (Bbr, 1)]),
        (G1, &[50], 4200, &[(NewReno, 128), (Bbr, 2)]),
        (G1, &[50], 21000, &[(NewReno, 128), (Bbr, 2)]),
        (G1, &[100], 8350, &[(NewReno, 128), (Bbr, 2)]),
        (G1, &[10], 850, &[(Vegas, 64), (NewReno, 1)]),
        (G1, &[100], 8500, &[(Vegas, 4), (NewReno, 128)]),
        (G1, &[100, 64], 8500, &[(Vegas, 4), (NewReno, 128)]),
        (G1, &[100], 8500, &[(Vegas, 8), (NewReno, 128)]),
        (G1, &[10], 850, &[(Vegas, 128), (Bbr, 1)]),
        (G1, &[100], 8500, &[(Bic, 2), (Cubic, 32)]),
        (G10, &[50, 44], 41667, &[(NewReno, 128), (Cubic, 16)]),
        (G10, &[28, 28], 25000, &[(NewReno, 128), (Cubic, 128)]),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (rate_bps, rtts_ms, buffer_mtus, mix))| Row {
            id: i + 1,
            rate_bps,
            rtts_ms,
            buffer_mtus,
            mix,
        })
        .collect()
}

impl Row {
    pub fn flows(&self) -> Vec<DumbbellFlow> {
        cca_mix(self.mix, self.rtts_ms)
    }

    pub fn label(&self) -> String {
        let mix: Vec<String> = self
            .mix
            .iter()
            .map(|(cc, n)| format!("{}:{}", cc.label(), n))
            .collect();
        format!(
            "{} rtt{:?} buf{} {{{}}}",
            mbps(self.rate_bps as f64),
            self.rtts_ms,
            self.buffer_mtus,
            mix.join(",")
        )
    }

    /// Scaled simulation seconds for this row (paper: 100 s).
    pub fn scaled_secs(&self) -> u64 {
        let n_flows: usize = self.mix.iter().map(|(_, n)| n).sum();
        match self.rate_bps {
            r if r >= 10_000_000_000 => 4,
            r if r >= 1_000_000_000 => {
                if n_flows > 512 {
                    8
                } else {
                    12
                }
            }
            _ => 20,
        }
    }
}

/// One measured cell (per discipline).
pub struct Cell {
    pub throughput_bps: f64,
    pub goodput_bps: f64,
    pub jfi: f64,
    /// Telemetry export of the underlying run (when the ctx has a sink).
    pub telemetry: Option<String>,
}

/// Run one row under one discipline.
pub fn run_row(ctx: &Ctx, row: &Row, d: Discipline) -> Cell {
    let duration = ctx.secs(row.scaled_secs(), 100);
    let m = DumbbellRun::new(row.rate_bps)
        .buffer_mtus(row.buffer_mtus)
        .discipline(d)
        .duration(duration)
        .seed(ctx.seed)
        .telemetry(ctx.telemetry_enabled())
        .scheduler(ctx.sched)
        .run(&row.flows());
    Cell {
        throughput_bps: m.throughput_bps,
        goodput_bps: m.goodput_bps,
        jfi: m.jfi,
        telemetry: m.result.telemetry,
    }
}

/// Regenerate Table 2 (optionally only `selected` row ids).
pub fn run(ctx: &Ctx, selected: Option<&[usize]>) -> String {
    let mut t = Table::new(&[
        "row", "config", "tput-FIFO", "tput-FQ", "tput-Ceb", "good-FIFO", "good-FQ", "good-Ceb",
        "JFI-FIFO", "JFI-FQ", "JFI-Ceb",
    ]);
    let selected_rows: Vec<Row> = rows()
        .into_iter()
        .filter(|row| selected.is_none_or(|sel| sel.contains(&row.id)))
        .collect();
    // Every (row, discipline) cell is an independent simulation: flatten
    // the whole table into one job batch and reassemble in row order.
    let mut jobs = Vec::new();
    for row in &selected_rows {
        for &d in Discipline::PAPER.iter() {
            jobs.push((row.clone(), d));
        }
    }
    let results = ctx.pool().map(jobs, |_, (row, d)| run_row(ctx, &row, d));
    let exports: Vec<Option<&str>> = results.iter().map(|c| c.telemetry.as_deref()).collect();
    ctx.export_telemetry("table2", &exports);
    let mut it = results.into_iter();
    for row in &selected_rows {
        let cells: Vec<Cell> = (0..Discipline::PAPER.len())
            .map(|_| it.next().expect("job/result count mismatch"))
            .collect();
        t.row(vec![
            row.id.to_string(),
            row.label(),
            mbps(cells[0].throughput_bps),
            mbps(cells[1].throughput_bps),
            mbps(cells[2].throughput_bps),
            mbps(cells[0].goodput_bps),
            mbps(cells[1].goodput_bps),
            mbps(cells[2].goodput_bps),
            format!("{:.3}", cells[0].jfi),
            format!("{:.3}", cells[1].jfi),
            format!("{:.3}", cells[2].jfi),
        ]);
        eprintln!("table2: row {} done", row.id);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_rows_matching_paper_structure() {
        let rs = rows();
        assert_eq!(rs.len(), 25);
        // Spot checks against the printed table.
        assert_eq!(rs[0].rate_bps, 100_000_000);
        assert_eq!(rs[8].mix, &[(CcKind::Vegas, 128), (CcKind::NewReno, 1)]);
        assert_eq!(rs[12].mix[0].1, 1024);
        assert_eq!(rs[23].rate_bps, 10_000_000_000);
        assert_eq!(rs[23].buffer_mtus, 41667);
        // All rows have at least 2 flows and a positive buffer.
        for r in &rs {
            assert!(r.flows().len() >= 2);
            assert!(r.buffer_mtus > 0);
            assert!(!r.rtts_ms.is_empty());
        }
    }

    #[test]
    fn scaled_secs_shrink_with_bandwidth() {
        let rs = rows();
        assert!(rs[0].scaled_secs() > rs[12].scaled_secs());
        assert!(rs[11].scaled_secs() > rs[24].scaled_secs());
    }

    #[test]
    fn smoke_run_one_cheap_row() {
        // Row 1 at a very short duration: just verify plumbing end-to-end.
        let ctx = Ctx::serial(false, 1);
        let row = &rows()[0];
        let m = DumbbellRun::new(row.rate_bps)
            .buffer_mtus(row.buffer_mtus)
            .duration(cebinae_sim::Duration::from_secs(2))
            .seed(ctx.seed)
            .run(&row.flows());
        assert!(m.throughput_bps > 50e6, "row 1 must load the link");
    }
}
