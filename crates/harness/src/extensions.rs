//! Extension experiments beyond the paper's evaluation.
//!
//! `fct` quantifies the paper's Example 1 claim — "Cebinae instead chooses
//! to ensure that there is always room for new flows to grow" — by
//! measuring the flow-completion times of Poisson-arriving mice against a
//! backdrop of elephant flows, under each discipline. The τ-funded ⊥
//! headroom should buy new flows a faster start than a FIFO full of
//! elephant queue.

use cebinae_engine::{dumbbell, Discipline, DumbbellFlow, ScenarioParams, Simulation};
use cebinae_metrics::percentile;
use cebinae_sim::rng::experiment_rng;
use cebinae_sim::{Duration, Time};
use cebinae_traffic::MiceWorkload;
use cebinae_transport::CcKind;

use crate::runner::{mbps, Ctx, Table};

/// Mice FCT under elephant load, per discipline.
pub fn fct(ctx: &Ctx) -> String {
    let duration = ctx.secs(30, 100);
    let rate = 100_000_000u64;
    let mut t = Table::new(&[
        "discipline",
        "mice-p50[ms]",
        "mice-p95[ms]",
        "mice-p99[ms]",
        "mice-done",
        "elephant[Mbps]",
    ]);
    let disciplines = vec![Discipline::Fifo, Discipline::FqCoDel, Discipline::Cebinae];
    let rows = ctx.pool().map(disciplines, |_, d| {
        // 4 elephants with infinite demand.
        let mut flows: Vec<_> = (0..4).map(|_| DumbbellFlow::new(CcKind::Cubic, 40)).collect();
        // Poisson mice from t=3s on (NewReno, the common case). The same
        // seeded arrival process is rebuilt per discipline, so every job is
        // self-contained.
        let workload = MiceWorkload {
            arrivals_per_sec: 10.0,
            from: Time::from_secs(3),
            until: Time::ZERO + duration - Duration::from_secs(3),
            ..MiceWorkload::default()
        };
        let mut rng = experiment_rng("ext-fct", ctx.seed);
        let arrivals = workload.generate(&mut rng);
        let n_elephants = flows.len();
        for a in &arrivals {
            flows.push(
                DumbbellFlow::new(CcKind::NewReno, 40)
                    .starting_at(a.start)
                    .with_bytes(a.bytes),
            );
        }

        let mut p = ScenarioParams::new(rate, 850, d);
        p.duration = duration;
        p.seed = ctx.seed;
        p.cebinae_p = Some(1);
        p.telemetry = ctx.telemetry_enabled();
        let (cfg, _) = dumbbell(&flows, &p);
        let r = Simulation::new(cfg).run();

        let mut fcts_ms = Vec::new();
        let mut done = 0usize;
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(at) = r.completed_at[n_elephants + i] {
                done += 1;
                fcts_ms.push(at.saturating_since(a.start).as_secs_f64() * 1e3);
            }
        }
        let elephant_bps: f64 = r.goodputs_bps(Time::from_secs(3))[..n_elephants]
            .iter()
            .sum();
        let cells = if fcts_ms.is_empty() {
            vec![
                d.label().into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "0".into(),
                mbps(elephant_bps),
            ]
        } else {
            vec![
                d.label().into(),
                format!("{:.1}", percentile(&fcts_ms, 50.0)),
                format!("{:.1}", percentile(&fcts_ms, 95.0)),
                format!("{:.1}", percentile(&fcts_ms, 99.0)),
                format!("{done}/{}", arrivals.len()),
                mbps(elephant_bps),
            ]
        };
        (cells, r.telemetry)
    });
    let exports: Vec<Option<&str>> = rows.iter().map(|(_, e)| e.as_deref()).collect();
    ctx.export_telemetry("ext-fct", &exports);
    for (row, _) in rows {
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mice_complete_and_are_timed() {
        // Miniature version: 1 elephant + a few mice on a small link.
        let flows = vec![
            DumbbellFlow::new(CcKind::Cubic, 20),
            DumbbellFlow::new(CcKind::NewReno, 20)
                .starting_at(Time::from_secs(2))
                .with_bytes(50_000),
            DumbbellFlow::new(CcKind::NewReno, 20)
                .starting_at(Time::from_secs(3))
                .with_bytes(200_000),
        ];
        let mut p = ScenarioParams::new(20_000_000, 100, Discipline::Cebinae);
        p.duration = Duration::from_secs(8);
        p.cebinae_p = Some(1);
        let (cfg, _) = dumbbell(&flows, &p);
        let r = Simulation::new(cfg).run();
        assert!(r.completed_at[0].is_none(), "elephant never completes");
        for i in [1, 2] {
            let at = r.completed_at[i].unwrap_or_else(|| panic!("mouse {i} unfinished"));
            assert!(at > r.flow_starts[i]);
            let fct = at.saturating_since(r.flow_starts[i]);
            assert!(
                fct < Duration::from_secs(5),
                "mouse {i} took {fct}"
            );
        }
    }
}

/// Equation 1 scalability sweep: minimum AFQ/PCQ queue counts (at a fixed
/// BpR) across flow-buffer requirements, versus Cebinae's constant 2 — the
/// quantified version of §5.5's "1000× more flows" claim.
pub fn scalability() -> String {
    use cebinae::resources::scalability_point;
    let mut t = Table::new(&[
        "rtt", "rate", "buffer_req", "AFQ/PCQ queues @BpR=8MTU", "Cebinae",
    ]);
    for (rtt_ms, rate_gbps) in [
        (0.1f64, 10u64),
        (1.0, 10),
        (10.0, 10),
        (50.0, 10),
        (100.0, 10),
        (200.0, 100),
    ] {
        let buffer_req = (rate_gbps as f64 * 1e9 / 8.0 * rtt_ms / 1e3) as u64;
        let p = scalability_point(0, buffer_req, 8 * 1500, 32);
        t.row(vec![
            format!("{rtt_ms}ms"),
            format!("{rate_gbps}G"),
            format!("{:.2}MB", buffer_req as f64 / 1e6),
            p.afq_queues_needed.to_string(),
            "2".into(),
        ]);
    }
    t.render()
}
