//! # cebinae-faults
//!
//! Deterministic, composable fault injection for the simulator.
//!
//! The paper evaluates Cebinae's control loop only on clean links; real
//! deployments see bursty loss, reordering, flapping links, and a control
//! plane that occasionally stalls. This crate gives the engine a
//! declarative [`FaultPlan`]:
//! per-link stochastic models (loss, reorder, duplication, corruption),
//! scripted link timelines (down/up flaps, rate changes), and
//! control-plane stall windows that delay or collapse Cebinae rotations.
//!
//! ## Determinism contract
//!
//! Every random decision comes from a [`DetRng`] stream derived from
//! `(seed, link index, fault family)` via [`splitmix64`] — never from the
//! engine's event order, wall clock, or thread count. Each `(link,
//! family)` pair owns a private stream that is advanced only when that
//! family is configured and a packet actually reaches the draw, so:
//!
//! * an **empty plan is inert**: no RNG draws, no scheduled events, no
//!   telemetry scope — runs are byte-identical to a build without the
//!   subsystem;
//! * **composing families is stable**: adding duplication to a plan does
//!   not perturb the loss stream, and faulting link 3 does not perturb
//!   link 5;
//! * results are byte-identical across thread counts and scheduler
//!   backends, so chaos campaigns replay and shrink like any other seed.
//!
//! The engine consumes a plan by resolving it against a concrete topology
//! into a [`FaultsRt`], which answers the three hot-path questions —
//! what happens to this packet ([`FaultsRt::on_enqueue`]), is this link
//! up ([`FaultsRt::is_down`]), and may this control event run
//! ([`FaultsRt::control_verdict`]) — and feeds the `sys:faults`
//! telemetry scope from [`FaultsRt::stats`].

use std::fmt;

use cebinae_net::LinkId;
use cebinae_sim::rng::{splitmix64, DetRng};
use cebinae_sim::{Duration, Time};

/// Salt mixed into the simulation seed when deriving per-link fault
/// streams, so fault randomness is unrelated to every other consumer of
/// the seed (qdiscs, traffic, the fuzzer's generation dimensions).
const FAULT_SEED_SALT: u64 = 0xfa17_ab1e_0000_0001;

/// Salt for [`chaos_plan`]'s intensity draws (distinct from the runtime
/// stream salt: the *shape* of a plan and its *per-packet outcomes* must
/// not share randomness, or changing one would perturb the other).
const CHAOS_SEED_SALT: u64 = 0xc4a0_5b1a_5000_0002;

/// Which links a fault spec applies to, resolved against the topology at
/// simulation construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every link in the topology.
    AllLinks,
    /// Every monitored bottleneck link.
    Bottlenecks,
    /// The `i`-th monitored bottleneck (index into `monitored_links`).
    Bottleneck(usize),
    /// One concrete link.
    Link(LinkId),
}

/// Stochastic loss model for a link.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LossModel {
    /// No random loss.
    #[default]
    None,
    /// Independent per-packet loss with probability `p`.
    Uniform { p: f64 },
    /// Gilbert–Elliott two-state Markov loss: a *good* state with loss
    /// probability `loss_good` and a *bad* (burst) state with
    /// `loss_bad`; transitions are drawn per packet (`p_enter` good→bad,
    /// `p_exit` bad→good), giving geometrically distributed burst
    /// lengths with mean `1/p_exit` packets.
    GilbertElliott {
        p_enter: f64,
        p_exit: f64,
        loss_good: f64,
        loss_bad: f64,
    },
}

impl LossModel {
    fn is_none(&self) -> bool {
        matches!(self, LossModel::None)
    }
}

/// Bounded-delay reordering: with probability `p` a packet is held back
/// for a uniform delay in `[min_hold, max_hold]` before entering the
/// queue, letting later packets overtake it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReorderSpec {
    pub p: f64,
    pub min_hold: Duration,
    pub max_hold: Duration,
}

/// One scripted event on a link's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEventKind {
    /// Link goes down: transmissions stop; queued and newly arriving
    /// packets wait in the qdisc (and overflow per its buffer policy).
    Down,
    /// Link comes back up and resumes draining.
    Up,
    /// Link capacity changes to `bps`.
    Rate(u64),
}

/// A scripted event at an absolute virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    pub at: Time,
    pub kind: LinkEventKind,
}

/// The full fault specification for one link (or link set).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkFaultSpec {
    /// Random loss at enqueue (drawn before every other family; a lost
    /// packet draws nothing else).
    pub loss: LossModel,
    /// Bounded-delay reordering.
    pub reorder: Option<ReorderSpec>,
    /// Probability a packet is duplicated at enqueue.
    pub duplicate: f64,
    /// Probability a packet is corrupted in flight. Corrupted packets
    /// traverse the network normally (they consume queue space and link
    /// capacity) but are discarded at the receiving endpoint with a
    /// telemetry counter — modelling a failed checksum.
    pub corrupt: f64,
    /// Scripted down/up/rate events, sorted by time at resolution.
    pub timeline: Vec<LinkEvent>,
}

impl LinkFaultSpec {
    pub fn is_empty(&self) -> bool {
        self.loss.is_none()
            && self.reorder.is_none()
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.timeline.is_empty()
    }
}

/// What a control-plane stall does to rotation events inside its window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallMode {
    /// The recompute is late: the first rotation due inside the window
    /// fires at the window's end.
    Delay,
    /// Rotations due inside the window are collapsed into the single one
    /// that fires at the window's end (the intermediate recomputes are
    /// skipped).
    Skip,
}

/// A half-open window `[from, until)` of virtual time during which the
/// control plane of the targeted link is stalled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallWindow {
    pub from: Time,
    pub until: Time,
    pub mode: StallMode,
}

/// Control-plane faults for one link's qdisc.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlFaultSpec {
    pub windows: Vec<StallWindow>,
}

/// A declarative fault plan: what goes wrong, where, and when. Resolved
/// against a concrete topology into a [`FaultsRt`] by the engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-target link fault specs. Multiple entries may resolve to the
    /// same link; stochastic families compose first-spec-wins per family,
    /// timelines concatenate.
    pub links: Vec<(FaultTarget, LinkFaultSpec)>,
    /// Per-target control-plane fault specs.
    pub control: Vec<(FaultTarget, ControlFaultSpec)>,
}

impl FaultPlan {
    /// True when the plan injects nothing: the engine's inert fast path.
    pub fn is_empty(&self) -> bool {
        self.links.iter().all(|(_, s)| s.is_empty())
            && self.control.iter().all(|(_, c)| c.windows.is_empty())
    }

    /// Independent uniform loss with probability `p` on every link —
    /// the simplest useful plan.
    pub fn uniform_loss(p: f64) -> FaultPlan {
        if p <= 0.0 {
            return FaultPlan::default();
        }
        FaultPlan {
            links: vec![(
                FaultTarget::AllLinks,
                LinkFaultSpec {
                    loss: LossModel::Uniform { p },
                    ..LinkFaultSpec::default()
                },
            )],
            control: Vec::new(),
        }
    }

    /// Append another plan's specs to this one. Stochastic families
    /// compose first-spec-wins, so an appended spec never overrides an
    /// explicit spec already present for the same family.
    pub fn merge(&mut self, other: FaultPlan) {
        self.links.extend(other.links);
        self.control.extend(other.control);
    }

    /// The virtual time by which every *scripted* fault has cleared: the
    /// latest timeline event or stall-window end. `None` when the plan
    /// has no scripted component (purely stochastic plans never
    /// quiesce). Graceful-degradation oracles use this to place their
    /// post-fault recovery window.
    pub fn quiesce_ns(&self) -> Option<u64> {
        let link_max = self
            .links
            .iter()
            .flat_map(|(_, s)| s.timeline.iter().map(|e| e.at.0))
            .max();
        let ctl_max = self
            .control
            .iter()
            .flat_map(|(_, c)| c.windows.iter().map(|w| w.until.0))
            .max();
        match (link_max, ctl_max) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0).max(b.unwrap_or(0))),
        }
    }

    /// True when the plan carries stochastic noise that never clears
    /// (loss/reorder/duplication/corruption). Oracles relax their
    /// post-fault recovery checks to plain liveness for such plans.
    pub fn has_persistent_noise(&self) -> bool {
        self.links.iter().any(|(_, s)| {
            !s.loss.is_none() || s.reorder.is_some() || s.duplicate > 0.0 || s.corrupt > 0.0
        })
    }

    /// Parse a compact comma-separated fault spec, the `CEBINAE_FAULTS` /
    /// `--faults` surface. Each token is `family[:params]`, with
    /// `+`-separated parameters; bare names use defaults. All stochastic
    /// and scripted tokens target the monitored bottleneck links.
    ///
    /// | token | meaning |
    /// |---|---|
    /// | `loss[:p]` | uniform loss, default `p = 0.01` |
    /// | `burst[:p_bad]` | Gilbert–Elliott bursts, default `p_bad = 0.25` |
    /// | `reorder[:p]` | bounded-delay reordering, default `p = 0.02` |
    /// | `dup[:p]` | duplication, default `p = 0.01` |
    /// | `corrupt[:p]` | corruption (receive drop), default `p = 0.005` |
    /// | `flap[:at_ms+down_ms]` | link down at `at_ms` for `down_ms`, default `500+200` |
    /// | `rate[:at_ms+bps]` | capacity change at `at_ms`, default halves nothing (requires params) |
    /// | `stall[:from_ms+for_ms]` | delayed rotations in the window, default `400+300` |
    /// | `skip[:from_ms+for_ms]` | skipped rotations in the window, default `400+300` |
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, params) = match token.split_once(':') {
                Some((n, p)) => (n, Some(p)),
                None => (token, None),
            };
            let nums: Vec<f64> = match params {
                None => Vec::new(),
                Some(p) => p
                    .split('+')
                    .map(|x| {
                        x.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad number {x:?} in token {token:?}"))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let p0 = |default: f64| nums.first().copied().unwrap_or(default);
            let mut link_spec = LinkFaultSpec::default();
            match name {
                "loss" => link_spec.loss = LossModel::Uniform { p: p0(0.01) },
                "burst" => {
                    link_spec.loss = LossModel::GilbertElliott {
                        p_enter: 0.01,
                        p_exit: 0.25,
                        loss_good: 0.0,
                        loss_bad: p0(0.25),
                    }
                }
                "reorder" => {
                    link_spec.reorder = Some(ReorderSpec {
                        p: p0(0.02),
                        min_hold: Duration::from_micros(500),
                        max_hold: Duration::from_millis(3),
                    })
                }
                "dup" => link_spec.duplicate = p0(0.01),
                "corrupt" => link_spec.corrupt = p0(0.005),
                "flap" => {
                    let at = Duration::from_millis(p0(500.0) as u64);
                    let down =
                        Duration::from_millis(nums.get(1).copied().unwrap_or(200.0) as u64);
                    link_spec.timeline = vec![
                        LinkEvent { at: Time(at.0), kind: LinkEventKind::Down },
                        LinkEvent { at: Time(at.0 + down.0), kind: LinkEventKind::Up },
                    ];
                }
                "rate" => {
                    let (Some(at), Some(bps)) = (nums.first(), nums.get(1)) else {
                        return Err(format!("token {token:?} needs at_ms+bps"));
                    };
                    link_spec.timeline = vec![LinkEvent {
                        at: Time(Duration::from_millis(*at as u64).0),
                        kind: LinkEventKind::Rate(*bps as u64),
                    }];
                }
                "stall" | "skip" => {
                    let from = Time(Duration::from_millis(p0(400.0) as u64).0);
                    let len =
                        Duration::from_millis(nums.get(1).copied().unwrap_or(300.0) as u64);
                    plan.control.push((
                        FaultTarget::Bottlenecks,
                        ControlFaultSpec {
                            windows: vec![StallWindow {
                                from,
                                until: Time(from.0 + len.0),
                                mode: if name == "stall" {
                                    StallMode::Delay
                                } else {
                                    StallMode::Skip
                                },
                            }],
                        },
                    ));
                    continue;
                }
                _ => return Err(format!("unknown fault token {name:?}")),
            }
            plan.links.push((FaultTarget::Bottlenecks, link_spec));
        }
        Ok(plan)
    }
}

/// The named chaos families the fuzzer and the harness's chaos experiment
/// sweep over. Each maps to a seed-parameterized plan via [`chaos_plan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultFamily {
    Loss,
    Burst,
    Reorder,
    Dup,
    Corrupt,
    Flap,
    Stall,
    Mix,
}

impl FaultFamily {
    pub const ALL: [FaultFamily; 8] = [
        FaultFamily::Loss,
        FaultFamily::Burst,
        FaultFamily::Reorder,
        FaultFamily::Dup,
        FaultFamily::Corrupt,
        FaultFamily::Flap,
        FaultFamily::Stall,
        FaultFamily::Mix,
    ];

    /// Stable lower-case name, the `parse` inverse; used in scenario
    /// descriptions, corpus entries, and `--faults` replay arguments.
    pub fn label(self) -> &'static str {
        match self {
            FaultFamily::Loss => "loss",
            FaultFamily::Burst => "burst",
            FaultFamily::Reorder => "reorder",
            FaultFamily::Dup => "dup",
            FaultFamily::Corrupt => "corrupt",
            FaultFamily::Flap => "flap",
            FaultFamily::Stall => "stall",
            FaultFamily::Mix => "mix",
        }
    }

    pub fn parse(s: &str) -> Option<FaultFamily> {
        let s = s.trim().to_ascii_lowercase();
        FaultFamily::ALL.into_iter().find(|f| f.label() == s)
    }
}

impl fmt::Display for FaultFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Build a seed-parameterized chaos plan for one family, targeting the
/// scenario's bottleneck links.
///
/// Intensities are drawn from a [`DetRng`] keyed by `(seed, family)` —
/// the same seed always yields the same plan. Scripted components are
/// placed as *fractions* of `duration_ms`, so shrinking a failing
/// scenario's duration rescales its fault windows instead of pushing
/// them past the end of the run; windows clear by ~60% of the run,
/// leaving a recovery tail for the graceful-degradation oracles.
pub fn chaos_plan(seed: u64, family: FaultFamily, duration_ms: u64) -> FaultPlan {
    let fam_idx = FaultFamily::ALL.iter().position(|f| *f == family).unwrap_or(0) as u64;
    let mut rng = DetRng::seed_from_u64(splitmix64(seed ^ CHAOS_SEED_SALT ^ (fam_idx << 32)));
    let frac = |rng: &mut DetRng, lo: f64, hi: f64| -> Time {
        Time(Duration::from_millis((duration_ms as f64 * rng.gen_range_f64(lo, hi)) as u64).0)
    };
    let mut plan = FaultPlan::default();
    let mut spec = LinkFaultSpec::default();
    match family {
        FaultFamily::Loss => spec.loss = LossModel::Uniform { p: rng.gen_range_f64(0.002, 0.02) },
        FaultFamily::Burst => {
            spec.loss = LossModel::GilbertElliott {
                p_enter: rng.gen_range_f64(0.005, 0.02),
                p_exit: rng.gen_range_f64(0.15, 0.35),
                loss_good: 0.0,
                loss_bad: rng.gen_range_f64(0.2, 0.5),
            }
        }
        FaultFamily::Reorder => {
            spec.reorder = Some(ReorderSpec {
                p: rng.gen_range_f64(0.01, 0.05),
                min_hold: Duration::from_micros(rng.gen_range_u64(200, 800)),
                max_hold: Duration::from_micros(rng.gen_range_u64(1_000, 3_000)),
            })
        }
        FaultFamily::Dup => spec.duplicate = rng.gen_range_f64(0.005, 0.03),
        FaultFamily::Corrupt => spec.corrupt = rng.gen_range_f64(0.002, 0.01),
        FaultFamily::Flap => {
            let down = frac(&mut rng, 0.30, 0.40);
            let up = Time(down.0 + frac(&mut rng, 0.08, 0.15).0);
            spec.timeline = vec![
                LinkEvent { at: down, kind: LinkEventKind::Down },
                LinkEvent { at: up, kind: LinkEventKind::Up },
            ];
        }
        FaultFamily::Stall => {
            let from = frac(&mut rng, 0.25, 0.35);
            let until = Time(from.0 + frac(&mut rng, 0.15, 0.25).0);
            let mode = if rng.gen_bool(0.5) { StallMode::Delay } else { StallMode::Skip };
            plan.control.push((
                FaultTarget::Bottlenecks,
                ControlFaultSpec { windows: vec![StallWindow { from, until, mode }] },
            ));
        }
        FaultFamily::Mix => {
            spec.loss = LossModel::GilbertElliott {
                p_enter: rng.gen_range_f64(0.003, 0.01),
                p_exit: rng.gen_range_f64(0.2, 0.4),
                loss_good: 0.0,
                loss_bad: rng.gen_range_f64(0.1, 0.3),
            };
            spec.reorder = Some(ReorderSpec {
                p: rng.gen_range_f64(0.005, 0.02),
                min_hold: Duration::from_micros(200),
                max_hold: Duration::from_micros(rng.gen_range_u64(800, 2_000)),
            });
            let down = frac(&mut rng, 0.30, 0.38);
            let up = Time(down.0 + frac(&mut rng, 0.05, 0.10).0);
            spec.timeline = vec![
                LinkEvent { at: down, kind: LinkEventKind::Down },
                LinkEvent { at: up, kind: LinkEventKind::Up },
            ];
        }
    }
    if !spec.is_empty() {
        plan.links.push((FaultTarget::Bottlenecks, spec));
    }
    plan
}

/// What happens to one packet at link enqueue. Field order mirrors the
/// draw order: loss first (a dropped packet draws nothing else), then
/// corruption, duplication, reorder holdback.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnqueueFate {
    pub drop: bool,
    pub corrupt: bool,
    pub duplicate: bool,
    pub hold: Option<Duration>,
}

/// Verdict for one control-plane (rotation) event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlVerdict {
    /// Run the recompute now.
    Proceed,
    /// Stalled: the engine re-posts the event at the given time and skips
    /// the recompute for now.
    Park(Time),
    /// A later rotation is already parked for this window; this one is
    /// absorbed into it.
    Swallow,
}

/// Counters for everything the subsystem injected, exported under the
/// `sys:faults` telemetry scope. All monotone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by the loss models.
    pub injected_drop_pkts: u64,
    /// Bytes dropped by the loss models.
    pub injected_drop_bytes: u64,
    /// Packets marked corrupted at enqueue.
    pub corrupt_pkts: u64,
    /// Corrupted packets discarded at the receiving endpoint.
    pub corrupt_rx_drops: u64,
    /// Duplicate copies injected.
    pub dup_pkts: u64,
    /// Packets held back for reordering.
    pub reorder_held_pkts: u64,
    /// Gilbert–Elliott good→bad transitions (burst onsets).
    pub loss_bursts: u64,
    /// Scripted link-down events applied.
    pub link_down_events: u64,
    /// Scripted link-up events applied.
    pub link_up_events: u64,
    /// Scripted rate changes applied.
    pub rate_changes: u64,
    /// Rotations deferred to a stall-window end (Delay mode parks).
    pub control_delayed: u64,
    /// Rotations absorbed into an already-parked one, plus Skip-mode
    /// parks — the recomputes that never ran on schedule.
    pub control_skipped: u64,
}

/// Per-link stochastic state: one private RNG stream per family, plus the
/// Gilbert–Elliott channel state.
struct LinkRt {
    loss: LossModel,
    reorder: Option<ReorderSpec>,
    duplicate: f64,
    corrupt: f64,
    /// Gilbert–Elliott: currently in the bad (burst) state.
    burst: bool,
    r_loss: DetRng,
    r_corrupt: DetRng,
    r_dup: DetRng,
    r_reorder: DetRng,
    /// Remaining scripted events, earliest last (popped from the back).
    timeline: Vec<LinkEvent>,
    down: bool,
}

/// Per-link control-plane state.
struct ControlRt {
    windows: Vec<StallWindow>,
    /// A rotation is already parked at the current window's end.
    parked: bool,
}

/// A [`FaultPlan`] resolved against a concrete topology: per-link runtime
/// state plus the injection counters. Owned by the simulation.
pub struct FaultsRt {
    links: Vec<Option<LinkRt>>,
    control: Vec<Option<ControlRt>>,
    any: bool,
    stats: FaultStats,
}

impl FaultsRt {
    /// Build the inert runtime for an empty plan — no allocations per
    /// link, every query short-circuits.
    pub fn inert() -> FaultsRt {
        FaultsRt { links: Vec::new(), control: Vec::new(), any: false, stats: FaultStats::default() }
    }

    /// Resolve `plan` against a topology with `n_links` links whose
    /// monitored bottlenecks are `bottlenecks`. Each faulted link gets
    /// family streams seeded from `(seed, link index)` only, so faulting
    /// one link never perturbs another.
    pub fn resolve(plan: &FaultPlan, n_links: usize, bottlenecks: &[LinkId], seed: u64) -> FaultsRt {
        if plan.is_empty() {
            return FaultsRt::inert();
        }
        let expand = |target: FaultTarget| -> Vec<usize> {
            match target {
                FaultTarget::AllLinks => (0..n_links).collect(),
                FaultTarget::Bottlenecks => bottlenecks.iter().map(|l| l.index()).collect(),
                FaultTarget::Bottleneck(i) => {
                    bottlenecks.get(i).map(|l| l.index()).into_iter().collect()
                }
                FaultTarget::Link(l) => {
                    if l.index() < n_links {
                        vec![l.index()]
                    } else {
                        Vec::new()
                    }
                }
            }
        };

        // Merge specs per link: stochastic families compose
        // first-spec-wins, timelines concatenate.
        let mut merged: Vec<Option<LinkFaultSpec>> = vec![None; n_links];
        for (target, spec) in &plan.links {
            if spec.is_empty() {
                continue;
            }
            for i in expand(*target) {
                let slot = merged[i].get_or_insert_with(LinkFaultSpec::default);
                if slot.loss.is_none() {
                    slot.loss = spec.loss;
                }
                if slot.reorder.is_none() {
                    slot.reorder = spec.reorder;
                }
                if slot.duplicate == 0.0 {
                    slot.duplicate = spec.duplicate;
                }
                if slot.corrupt == 0.0 {
                    slot.corrupt = spec.corrupt;
                }
                slot.timeline.extend_from_slice(&spec.timeline);
            }
        }

        let links: Vec<Option<LinkRt>> = merged
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut spec = spec?;
                // Earliest event last, so applying pops from the back.
                spec.timeline.sort_by_key(|e| e.at);
                spec.timeline.reverse();
                // One independent stream per (link, family): seeded from
                // the link index alone, and only ever advanced when its
                // family draws — the composition property.
                let link_seed = splitmix64(seed ^ FAULT_SEED_SALT ^ ((i as u64) << 16));
                let mut root = DetRng::seed_from_u64(link_seed);
                Some(LinkRt {
                    loss: spec.loss,
                    reorder: spec.reorder,
                    duplicate: spec.duplicate,
                    corrupt: spec.corrupt,
                    burst: false,
                    r_loss: root.fork(),
                    r_corrupt: root.fork(),
                    r_dup: root.fork(),
                    r_reorder: root.fork(),
                    timeline: spec.timeline,
                    down: false,
                })
            })
            .collect();

        let mut control: Vec<Option<ControlRt>> = (0..n_links).map(|_| None).collect();
        for (target, spec) in &plan.control {
            if spec.windows.is_empty() {
                continue;
            }
            for i in expand(*target) {
                let slot =
                    control[i].get_or_insert_with(|| ControlRt { windows: Vec::new(), parked: false });
                slot.windows.extend_from_slice(&spec.windows);
            }
        }
        for slot in control.iter_mut().flatten() {
            slot.windows.sort_by_key(|w| (w.from, w.until));
        }

        let any = links.iter().any(Option::is_some) || control.iter().any(Option::is_some);
        FaultsRt { links, control, any, stats: FaultStats::default() }
    }

    /// True when any link carries fault state — the engine's hot-path
    /// gate. False for the inert runtime.
    #[inline]
    pub fn any(&self) -> bool {
        self.any
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Count of links currently scripted down (telemetry gauge).
    pub fn links_down(&self) -> usize {
        self.links.iter().flatten().filter(|l| l.down).count()
    }

    /// The `(time, link)` pairs the engine must schedule timeline events
    /// for, in deterministic (link index, time) order.
    pub fn timeline_posts(&self) -> Vec<(Time, LinkId)> {
        let mut posts = Vec::new();
        for (i, rt) in self.links.iter().enumerate() {
            let Some(rt) = rt else { continue };
            // Timeline is stored reversed (earliest last).
            for ev in rt.timeline.iter().rev() {
                posts.push((ev.at, LinkId(i as u32)));
            }
        }
        posts
    }

    /// Apply the next scripted event on `link`'s timeline: flips the down
    /// flag, bumps counters, and returns the kind so the engine can apply
    /// side effects (rate changes, kicking a revived link).
    pub fn next_timeline(&mut self, link: LinkId) -> Option<LinkEventKind> {
        let rt = self.links.get_mut(link.index())?.as_mut()?;
        let ev = rt.timeline.pop()?;
        match ev.kind {
            LinkEventKind::Down => {
                rt.down = true;
                self.stats.link_down_events += 1;
            }
            LinkEventKind::Up => {
                rt.down = false;
                self.stats.link_up_events += 1;
            }
            LinkEventKind::Rate(_) => self.stats.rate_changes += 1,
        }
        Some(ev.kind)
    }

    /// Is `link` currently scripted down?
    #[inline]
    pub fn is_down(&self, link: LinkId) -> bool {
        self.links
            .get(link.index())
            .and_then(Option::as_ref)
            .is_some_and(|l| l.down)
    }

    /// Draw the fate of one packet of `size` bytes entering `link`'s
    /// queue. Draw order is fixed (loss, corrupt, dup, reorder) and each
    /// family's stream advances only when that family is configured, so
    /// composed plans reproduce their single-family outcomes.
    pub fn on_enqueue(&mut self, link: LinkId, size: u32) -> EnqueueFate {
        let mut fate = EnqueueFate::default();
        let Some(rt) = self.links.get_mut(link.index()).and_then(Option::as_mut) else {
            return fate;
        };
        let dropped = match rt.loss {
            LossModel::None => false,
            LossModel::Uniform { p } => rt.r_loss.gen_bool(p),
            LossModel::GilbertElliott { p_enter, p_exit, loss_good, loss_bad } => {
                if rt.burst {
                    if rt.r_loss.gen_bool(p_exit) {
                        rt.burst = false;
                    }
                } else if rt.r_loss.gen_bool(p_enter) {
                    rt.burst = true;
                    self.stats.loss_bursts += 1;
                }
                rt.r_loss.gen_bool(if rt.burst { loss_bad } else { loss_good })
            }
        };
        if dropped {
            self.stats.injected_drop_pkts += 1;
            self.stats.injected_drop_bytes += size as u64;
            fate.drop = true;
            return fate;
        }
        if rt.corrupt > 0.0 && rt.r_corrupt.gen_bool(rt.corrupt) {
            self.stats.corrupt_pkts += 1;
            fate.corrupt = true;
        }
        if rt.duplicate > 0.0 && rt.r_dup.gen_bool(rt.duplicate) {
            self.stats.dup_pkts += 1;
            fate.duplicate = true;
        }
        if let Some(re) = rt.reorder {
            if rt.r_reorder.gen_bool(re.p) {
                let hold = rt.r_reorder.gen_range_u64(re.min_hold.0, re.max_hold.0.max(re.min_hold.0 + 1));
                self.stats.reorder_held_pkts += 1;
                fate.hold = Some(Duration(hold));
            }
        }
        fate
    }

    /// Record a corrupted packet discarded at its receiving endpoint.
    pub fn note_corrupt_rx_drop(&mut self) {
        self.stats.corrupt_rx_drops += 1;
    }

    /// Judge a control-plane (rotation) event due now on `link`. At most
    /// one event is parked per stall window; the parked event fires at
    /// the window's end (`until` is outside the half-open window, so it
    /// proceeds and re-arms normal operation).
    pub fn control_verdict(&mut self, link: LinkId, now: Time) -> ControlVerdict {
        let Some(rt) = self.control.get_mut(link.index()).and_then(Option::as_mut) else {
            return ControlVerdict::Proceed;
        };
        let Some(w) = rt.windows.iter().find(|w| w.from <= now && now < w.until) else {
            rt.parked = false;
            return ControlVerdict::Proceed;
        };
        if rt.parked {
            self.stats.control_skipped += 1;
            return ControlVerdict::Swallow;
        }
        rt.parked = true;
        match w.mode {
            StallMode::Delay => self.stats.control_delayed += 1,
            StallMode::Skip => self.stats.control_skipped += 1,
        }
        ControlVerdict::Park(w.until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(rt: &mut FaultsRt, link: LinkId, n: usize) -> (usize, usize, usize, usize) {
        let (mut drops, mut corrupt, mut dups, mut holds) = (0, 0, 0, 0);
        for _ in 0..n {
            let f = rt.on_enqueue(link, 1500);
            drops += usize::from(f.drop);
            corrupt += usize::from(f.corrupt);
            dups += usize::from(f.duplicate);
            holds += usize::from(f.hold.is_some());
        }
        (drops, corrupt, dups, holds)
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(FaultPlan::uniform_loss(0.0).is_empty());
        let mut rt = FaultsRt::resolve(&plan, 8, &[LinkId(2)], 42);
        assert!(!rt.any());
        assert!(rt.timeline_posts().is_empty());
        assert!(!rt.is_down(LinkId(2)));
        assert_eq!(rt.on_enqueue(LinkId(2), 1500), EnqueueFate::default());
        assert_eq!(rt.control_verdict(LinkId(2), Time(1)), ControlVerdict::Proceed);
        assert_eq!(*rt.stats(), FaultStats::default());
    }

    #[test]
    fn uniform_loss_hits_near_rate() {
        let plan = FaultPlan::uniform_loss(0.1);
        let mut rt = FaultsRt::resolve(&plan, 4, &[], 7);
        assert!(rt.any());
        let (drops, ..) = rates(&mut rt, LinkId(1), 10_000);
        assert!((800..1200).contains(&drops), "drops={drops}");
        assert_eq!(rt.stats().injected_drop_pkts, drops as u64);
        assert_eq!(rt.stats().injected_drop_bytes, 1500 * drops as u64);
    }

    #[test]
    fn gilbert_elliott_losses_cluster_in_bursts() {
        let plan = FaultPlan {
            links: vec![(
                FaultTarget::AllLinks,
                LinkFaultSpec {
                    loss: LossModel::GilbertElliott {
                        p_enter: 0.01,
                        p_exit: 0.2,
                        loss_good: 0.0,
                        loss_bad: 0.5,
                    },
                    ..LinkFaultSpec::default()
                },
            )],
            control: Vec::new(),
        };
        let mut rt = FaultsRt::resolve(&plan, 1, &[], 3);
        let mut drops = Vec::new();
        for i in 0..20_000 {
            if rt.on_enqueue(LinkId(0), 100).drop {
                drops.push(i);
            }
        }
        assert!(rt.stats().loss_bursts > 10, "bursts={}", rt.stats().loss_bursts);
        assert!(!drops.is_empty());
        // Burstiness: consecutive-loss gaps of 1-2 packets must be far
        // more common than under independent loss at the same rate.
        let close = drops.windows(2).filter(|w| w[1] - w[0] <= 2).count();
        assert!(
            close * 4 > drops.len(),
            "losses not clustered: {close} close pairs of {}",
            drops.len()
        );
    }

    #[test]
    fn streams_are_isolated_per_family_and_link() {
        // Loss-only plan vs loss+dup plan: identical loss outcomes.
        let base = FaultPlan::uniform_loss(0.05);
        let mut composed = base.clone();
        composed.links[0].1.duplicate = 0.1;
        composed.links[0].1.corrupt = 0.02;
        let mut a = FaultsRt::resolve(&base, 2, &[], 99);
        let mut b = FaultsRt::resolve(&composed, 2, &[], 99);
        for _ in 0..5_000 {
            assert_eq!(a.on_enqueue(LinkId(0), 64).drop, b.on_enqueue(LinkId(0), 64).drop);
        }
        // Per-link isolation: link 1's stream is unaffected by how much
        // link 0 has drawn.
        let mut c = FaultsRt::resolve(&base, 2, &[], 99);
        let solo: Vec<bool> = (0..1_000).map(|_| c.on_enqueue(LinkId(1), 64).drop).collect();
        let interleaved: Vec<bool> = (0..1_000).map(|_| a.on_enqueue(LinkId(1), 64).drop).collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn timeline_resolves_in_order_and_flips_down_state() {
        let plan = FaultPlan {
            links: vec![(
                FaultTarget::Bottleneck(0),
                LinkFaultSpec {
                    timeline: vec![
                        LinkEvent { at: Time(500), kind: LinkEventKind::Up },
                        LinkEvent { at: Time(100), kind: LinkEventKind::Down },
                        LinkEvent { at: Time(900), kind: LinkEventKind::Rate(1_000) },
                    ],
                    ..LinkFaultSpec::default()
                },
            )],
            control: Vec::new(),
        };
        let mut rt = FaultsRt::resolve(&plan, 4, &[LinkId(3)], 0);
        assert_eq!(
            rt.timeline_posts(),
            vec![(Time(100), LinkId(3)), (Time(500), LinkId(3)), (Time(900), LinkId(3))]
        );
        assert!(!rt.is_down(LinkId(3)));
        assert_eq!(rt.next_timeline(LinkId(3)), Some(LinkEventKind::Down));
        assert!(rt.is_down(LinkId(3)));
        assert_eq!(rt.links_down(), 1);
        assert_eq!(rt.next_timeline(LinkId(3)), Some(LinkEventKind::Up));
        assert!(!rt.is_down(LinkId(3)));
        assert_eq!(rt.next_timeline(LinkId(3)), Some(LinkEventKind::Rate(1_000)));
        assert_eq!(rt.next_timeline(LinkId(3)), None);
        let s = rt.stats();
        assert_eq!((s.link_down_events, s.link_up_events, s.rate_changes), (1, 1, 1));
    }

    #[test]
    fn control_window_parks_once_then_swallows() {
        let plan = FaultPlan {
            links: Vec::new(),
            control: vec![(
                FaultTarget::AllLinks,
                ControlFaultSpec {
                    windows: vec![StallWindow {
                        from: Time(1_000),
                        until: Time(2_000),
                        mode: StallMode::Delay,
                    }],
                },
            )],
        };
        let mut rt = FaultsRt::resolve(&plan, 1, &[], 0);
        assert!(rt.any());
        assert_eq!(rt.control_verdict(LinkId(0), Time(500)), ControlVerdict::Proceed);
        assert_eq!(rt.control_verdict(LinkId(0), Time(1_000)), ControlVerdict::Park(Time(2_000)));
        assert_eq!(rt.control_verdict(LinkId(0), Time(1_500)), ControlVerdict::Swallow);
        // The parked event fires at the window end and proceeds.
        assert_eq!(rt.control_verdict(LinkId(0), Time(2_000)), ControlVerdict::Proceed);
        assert_eq!(rt.control_verdict(LinkId(0), Time(2_500)), ControlVerdict::Proceed);
        let s = rt.stats();
        assert_eq!((s.control_delayed, s.control_skipped), (1, 1));
    }

    #[test]
    fn merge_shim_never_overrides_explicit_spec() {
        let mut plan = FaultPlan::uniform_loss(0.2);
        plan.merge(FaultPlan::uniform_loss(0.9));
        let mut rt = FaultsRt::resolve(&plan, 1, &[], 5);
        let (drops, ..) = rates(&mut rt, LinkId(0), 10_000);
        assert!((1700..2300).contains(&drops), "first-spec-wins violated: drops={drops}");
    }

    #[test]
    fn quiesce_and_noise_classification() {
        assert_eq!(FaultPlan::default().quiesce_ns(), None);
        let loss = FaultPlan::uniform_loss(0.01);
        assert_eq!(loss.quiesce_ns(), None);
        assert!(loss.has_persistent_noise());
        let flap = chaos_plan(1, FaultFamily::Flap, 1_000);
        let q = flap.quiesce_ns().expect("flap has a timeline");
        assert!(q <= 1_000 * 1_000_000 * 6 / 10, "flap clears by 60%: {q}");
        assert!(!flap.has_persistent_noise());
        let stall = chaos_plan(1, FaultFamily::Stall, 1_000);
        assert!(stall.quiesce_ns().is_some());
        let mix = chaos_plan(1, FaultFamily::Mix, 1_000);
        assert!(mix.quiesce_ns().is_some());
        assert!(mix.has_persistent_noise());
    }

    #[test]
    fn chaos_plans_are_seed_deterministic_and_duration_scaled() {
        for fam in FaultFamily::ALL {
            let a = chaos_plan(11, fam, 2_000);
            let b = chaos_plan(11, fam, 2_000);
            assert_eq!(a, b, "family {fam} not deterministic");
            assert!(!a.is_empty(), "family {fam} generated an empty plan");
        }
        assert_ne!(chaos_plan(1, FaultFamily::Loss, 1_000), chaos_plan(2, FaultFamily::Loss, 1_000));
        // Halving the duration halves the scripted window positions.
        let long = chaos_plan(4, FaultFamily::Flap, 2_000).quiesce_ns().unwrap();
        let short = chaos_plan(4, FaultFamily::Flap, 1_000).quiesce_ns().unwrap();
        assert!((long / 2).abs_diff(short) <= 1_000_000, "long={long} short={short}");
    }

    #[test]
    fn family_labels_round_trip() {
        for fam in FaultFamily::ALL {
            assert_eq!(FaultFamily::parse(fam.label()), Some(fam));
        }
        assert_eq!(FaultFamily::parse("MIX"), Some(FaultFamily::Mix));
        assert_eq!(FaultFamily::parse("nope"), None);
    }

    #[test]
    fn parse_spec_tokens() {
        let plan = FaultPlan::parse("loss:0.02, dup, flap:100+50, stall:200+100").unwrap();
        assert_eq!(plan.links.len(), 3);
        assert_eq!(plan.control.len(), 1);
        assert!(matches!(plan.links[0].1.loss, LossModel::Uniform { p } if (p - 0.02).abs() < 1e-12));
        assert_eq!(plan.links[1].1.duplicate, 0.01);
        assert_eq!(
            plan.links[2].1.timeline,
            vec![
                LinkEvent { at: Time(100_000_000), kind: LinkEventKind::Down },
                LinkEvent { at: Time(150_000_000), kind: LinkEventKind::Up },
            ]
        );
        assert_eq!(
            plan.control[0].1.windows,
            vec![StallWindow {
                from: Time(200_000_000),
                until: Time(300_000_000),
                mode: StallMode::Delay,
            }]
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("gremlins").is_err());
        assert!(FaultPlan::parse("loss:abc").is_err());
        assert!(FaultPlan::parse("rate").is_err());
        assert!(FaultPlan::parse("burst,reorder,corrupt,skip").is_ok());
    }

    #[test]
    fn reorder_holds_are_bounded() {
        let plan = FaultPlan {
            links: vec![(
                FaultTarget::AllLinks,
                LinkFaultSpec {
                    reorder: Some(ReorderSpec {
                        p: 0.5,
                        min_hold: Duration(1_000),
                        max_hold: Duration(5_000),
                    }),
                    ..LinkFaultSpec::default()
                },
            )],
            control: Vec::new(),
        };
        let mut rt = FaultsRt::resolve(&plan, 1, &[], 13);
        let mut held = 0;
        for _ in 0..2_000 {
            if let Some(h) = rt.on_enqueue(LinkId(0), 64).hold {
                assert!((1_000..=5_000).contains(&h.0), "hold {h:?} out of bounds");
                held += 1;
            }
        }
        assert!((800..1200).contains(&held), "held={held}");
        assert_eq!(rt.stats().reorder_held_pkts, held as u64);
    }
}
