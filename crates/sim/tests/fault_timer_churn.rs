//! Backend-differential scheduler test under *fault-driven* timer churn.
//!
//! A link flap is the worst case the scheduler backends see in practice:
//! the engine parks a link (cancelling its pace timer), TCP senders keep
//! arming and backing off RTOs against a silent link, and when the link
//! returns everything re-arms at once. This test replays that churn
//! pattern as a deterministic script against both backends, pinning the
//! timestamps to the timing wheel's nastiest geometry — slot-64 cascade
//! edges and level boundaries (multiples of 64 and 64² ticks), where a
//! bucket must be re-filed across levels as the cursor passes.
//!
//! The contract is total: the two backends must agree on every returned
//! [`TimerId`] (they are insertion sequence numbers), every popped
//! `(Time, event)` pair, every `cancel` return value, and the API-level
//! diagnostics. Only the backend-mechanical counters (cascades,
//! tombstone discards, physical occupancy) may differ.

use cebinae_sim::rng::DetRng;
use cebinae_sim::{HeapScheduler, Scheduler, Time, TimerId, WheelScheduler};

const LEVEL0: u64 = 64; // wheel slots per level
const LEVEL1: u64 = 64 * 64; // one full level-0 revolution
const LEVEL2: u64 = 64 * 64 * 64; // one full level-1 revolution

/// One scripted flap cycle against a single backend. Returns a transcript
/// of everything observable through the `Scheduler` API.
fn run_script<S: Scheduler<u64> + ?Sized>(sched: &mut S) -> Vec<String> {
    let mut rng = DetRng::seed_from_u64(0xf1a9_c4c1);
    let mut log = Vec::new();
    let mut live: Vec<(TimerId, u64)> = Vec::new();
    let mut next_ev = 0u64;

    // Phase 1 — steady state: pace/RTO timers land all over the first
    // three wheel levels, deliberately hitting exact slot and level
    // boundaries (offset 0) as well as their neighbours.
    for base in [LEVEL0, LEVEL1, LEVEL2] {
        for k in 1..=4u64 {
            for jitter in [0u64, 1, 63] {
                let at = Time(base * k + jitter);
                let id = sched.schedule(at, next_ev);
                log.push(format!("arm {:?} at {}", id, at.0));
                live.push((id, next_ev));
                next_ev += 1;
            }
        }
    }

    // Phase 2 — the flap. Link goes down exactly on a level-1 boundary:
    // a random half of the timers are cancelled (the parked link's pace
    // timers), the rest are re-armed past the outage (RTO backoff), with
    // the re-arm targets again pinned to cascade edges.
    let down = Time(2 * LEVEL1);
    let up = Time(3 * LEVEL2);
    let mut rearmed: Vec<(TimerId, u64)> = Vec::new();
    for (id, ev) in live.drain(..) {
        if rng.gen_range_u64(0, 2) == 0 {
            let hit = sched.cancel(id);
            log.push(format!("cancel {:?} -> {}", id, hit));
        } else {
            // Strictly after the outage window: phase 3 drains up to and
            // including `up`, and a timer must not fire before its re-arm
            // handle is re-armed again in phase 4.
            let at = Time(up.0 + LEVEL0 * rng.gen_range_u64(1, 64));
            let nid = sched.rearm(id, at, ev);
            log.push(format!("rearm {:?} -> {:?} at {}", id, nid, at.0));
            rearmed.push((nid, ev));
        }
    }
    log.push(format!(
        "down={} len={} scheduled={} cancelled={}",
        down.0,
        sched.len(),
        sched.scheduled_total(),
        sched.cancelled_total()
    ));

    // Phase 3 — drain through the outage window: pops must cascade
    // level-2 buckets down cleanly even though most entries were
    // tombstoned or re-filed, and the clock must advance monotonically.
    let mut last = Time(0);
    while let Some(t) = sched.peek_time() {
        if t > up {
            break;
        }
        let (at, ev) = sched.pop().expect("peek promised an event");
        assert!(at >= last, "clock went backwards: {at:?} after {last:?}");
        last = at;
        log.push(format!("pop {} ev={}", at.0, ev));
    }

    // Phase 4 — the link returns: the survivors re-arm one more time
    // (slow-start restart), half of them onto the *same* instant to pin
    // FIFO ordering of equal timestamps, then everything drains.
    let restart = Time(up.0 + 5 * LEVEL1);
    for (id, ev) in rearmed {
        let at = if ev % 2 == 0 { restart } else { Time(restart.0 + ev) };
        let nid = sched.rearm(id, at, ev);
        log.push(format!("restart {:?} -> {:?} at {}", id, nid, at.0));
    }
    while let Some((at, ev)) = sched.pop() {
        assert!(at >= last, "clock went backwards: {at:?} after {last:?}");
        last = at;
        log.push(format!("pop {} ev={}", at.0, ev));
    }
    log.push(format!(
        "end now={} len={} scheduled={} cancelled={}",
        sched.now().0,
        sched.len(),
        sched.scheduled_total(),
        sched.cancelled_total()
    ));
    log
}

#[test]
fn flap_churn_at_level_boundaries_is_backend_identical() {
    let mut heap = HeapScheduler::new();
    let mut wheel = WheelScheduler::new();
    let h = run_script(&mut heap);
    let w = run_script(&mut wheel);
    assert_eq!(h.len(), w.len(), "transcript lengths diverged");
    for (i, (a, b)) in h.iter().zip(w.iter()).enumerate() {
        assert_eq!(a, b, "transcripts first diverge at step {i}");
    }
    // The wheel must actually have exercised its cascade path — a script
    // that never crosses a level boundary would make this test vacuous.
    assert!(
        wheel.cascades_total() > 0,
        "script never forced a wheel cascade"
    );
    assert!(heap.is_empty() && wheel.is_empty());
}

/// The same script popped through `SchedulerKind::build` trait objects —
/// the engine's actual calling convention.
#[test]
fn boxed_backends_agree_under_churn() {
    use cebinae_sim::SchedulerKind;
    let mut heap = SchedulerKind::Heap.build::<u64>();
    let mut wheel = SchedulerKind::Wheel.build::<u64>();
    let h = run_script(&mut *heap);
    let w = run_script(&mut *wheel);
    assert_eq!(h, w);
}
