//! Deterministic randomness utilities.
//!
//! Every stochastic element of the reproduction (flow start jitter, workload
//! synthesis, hash seeds, fault injection) draws from a seeded generator so
//! that experiments are replayable and the "100 trials per data point" runs
//! of Figure 13 can be driven by trial index alone.
//!
//! The generator is a self-contained xoshiro256++ implementation: the
//! workspace builds with zero external dependencies (so it resolves in
//! offline/vendored environments), and — more importantly for the
//! determinism story — *every* source of entropy in the workspace is forced
//! through this module. `cebinae-verify` rule R2 rejects `thread_rng`,
//! `rand::random`, OS entropy, and `RandomState` hashing anywhere in the
//! dataplane crates, so there is no second path randomness can sneak in by.

/// A deterministic xoshiro256++ generator.
///
/// Replaces `rand::rngs::SmallRng` (which on 64-bit targets was the same
/// algorithm family) with an explicit, dependency-free implementation whose
/// output stream is fixed forever by this source file — a new compiler or
/// crate version can never silently reshuffle "100 trials per data point".
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the full 256-bit state from one `u64` via the splitmix64
    /// expansion (the construction the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> DetRng {
        let mut x = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *word = splitmix64(x);
        }
        DetRng { s }
    }

    /// The raw xoshiro256++ output word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[lo, hi)` (Lemire-style widening reduction — no
    /// modulo bias beyond 2^-64, deterministic across platforms).
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range {lo}..{hi}");
        let span = hi - lo;
        let wide = (self.next_u64() as u128).wrapping_mul(span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            xs.swap(i, j);
        }
    }

    /// Split off an independent child stream, advancing this generator by
    /// one draw. Successive forks yield unrelated streams, and a fork's
    /// output does not depend on how much the *sibling* streams are later
    /// consumed — the property the scenario fuzzer relies on so that
    /// adding a draw to one generation dimension cannot perturb another.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from_u64(splitmix64(self.next_u64()))
    }
}

/// Create the root RNG for an experiment from a human-readable label and a
/// trial number. Mixing the label in means two different experiments with
/// the same trial index do not share a random stream.
pub fn experiment_rng(label: &str, trial: u64) -> DetRng {
    let mut seed = 0xceb1_ae51_9152_022fu64;
    for b in label.bytes() {
        seed = splitmix64(seed ^ b as u64);
    }
    seed = splitmix64(seed ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    DetRng::seed_from_u64(seed)
}

/// Derive an independent child RNG (e.g. one per flow) from a parent.
/// Equivalent to [`DetRng::fork`] modulo the extra splitmix64 whitening the
/// method applies; kept for existing call sites.
pub fn child_rng(parent: &mut DetRng) -> DetRng {
    DetRng::seed_from_u64(parent.next_u64())
}

/// The splitmix64 mixing function — a tiny, high-quality 64-bit bijection
/// used both for seed derivation and as the hash primitive in the
/// heavy-hitter cache (where independence across stages matters more than
/// cryptographic strength).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_and_trial_reproduce() {
        let mut a = experiment_rng("table2", 7);
        let mut b = experiment_rng("table2", 7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_trials_diverge() {
        let mut a = experiment_rng("table2", 0);
        let mut b = experiment_rng("table2", 1);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = experiment_rng("fig9", 0);
        let mut b = experiment_rng("fig10", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert_ne!(a, 0);
        // Nearby inputs should differ in many bits (avalanche sanity check).
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "poor avalanche: {diff} bits");
    }

    #[test]
    fn child_rngs_are_independent_streams() {
        let mut parent = experiment_rng("x", 0);
        let mut c1 = child_rng(&mut parent);
        let mut c2 = child_rng(&mut parent);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_streams_are_stable_and_isolated() {
        // Two forks from identical parents produce identical streams...
        let mut p1 = DetRng::seed_from_u64(11);
        let mut p2 = DetRng::seed_from_u64(11);
        let mut a = p1.fork();
        let mut b = p2.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // ...and draining one fork does not perturb a sibling fork: the
        // second fork's stream depends only on the parent's draw count.
        let mut p3 = DetRng::seed_from_u64(11);
        let mut first = p3.fork();
        for _ in 0..1000 {
            first.next_u64();
        }
        let mut p4 = DetRng::seed_from_u64(11);
        let _untouched = p4.fork();
        assert_eq!(p3.fork().next_u64(), p4.fork().next_u64());
        // Successive forks differ from each other and from the parent.
        let mut p = DetRng::seed_from_u64(5);
        let mut f1 = p.fork();
        let mut f2 = p.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the state seeded as
        // splitmix64 expansion of 0 — pins the stream across refactors.
        let mut r = DetRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = DetRng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // All distinct and nonzero (sanity, not a strict PRNG property —
        // true for this specific seed).
        assert!(first.iter().all(|&x| x != 0));
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = DetRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&x));
            let f = r.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = r.gen_range_usize(0, 7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_f64_is_uniformish() {
        let mut r = DetRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = DetRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.2)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "frac {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.1));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut r1 = DetRng::seed_from_u64(3);
        let mut r2 = DetRng::seed_from_u64(3);
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "100 elements virtually never shuffle to id");
    }
}
