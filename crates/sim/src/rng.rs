//! Deterministic randomness utilities.
//!
//! Every stochastic element of the reproduction (flow start jitter, workload
//! synthesis, hash seeds, fault injection) draws from a seeded generator so
//! that experiments are replayable and the "100 trials per data point" runs
//! of Figure 13 can be driven by trial index alone.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Create the root RNG for an experiment from a human-readable label and a
/// trial number. Mixing the label in means two different experiments with
/// the same trial index do not share a random stream.
pub fn experiment_rng(label: &str, trial: u64) -> SmallRng {
    let mut seed = 0xceb1_ae51_9152_022fu64;
    for b in label.bytes() {
        seed = splitmix64(seed ^ b as u64);
    }
    seed = splitmix64(seed ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    SmallRng::seed_from_u64(seed)
}

/// Derive an independent child RNG (e.g. one per flow) from a parent.
pub fn child_rng(parent: &mut SmallRng) -> SmallRng {
    SmallRng::seed_from_u64(parent.gen())
}

/// The splitmix64 mixing function — a tiny, high-quality 64-bit bijection
/// used both for seed derivation and as the hash primitive in the
/// heavy-hitter cache (where independence across stages matters more than
/// cryptographic strength).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_and_trial_reproduce() {
        let mut a = experiment_rng("table2", 7);
        let mut b = experiment_rng("table2", 7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_trials_diverge() {
        let mut a = experiment_rng("table2", 0);
        let mut b = experiment_rng("table2", 1);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = experiment_rng("fig9", 0);
        let mut b = experiment_rng("fig10", 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert_ne!(a, 0);
        // Nearby inputs should differ in many bits (avalanche sanity check).
        let diff = (a ^ b).count_ones();
        assert!(diff > 16, "poor avalanche: {diff} bits");
    }

    #[test]
    fn child_rngs_are_independent_streams() {
        let mut parent = experiment_rng("x", 0);
        let mut c1 = child_rng(&mut parent);
        let mut c2 = child_rng(&mut parent);
        assert_ne!(c1.gen::<u64>(), c2.gen::<u64>());
    }
}
