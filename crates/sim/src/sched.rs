//! The pluggable scheduling API.
//!
//! Every event-loop backend implements [`Scheduler`]: a priority queue of
//! timestamped events with deterministic `(time, sequence)` ordering —
//! two events scheduled for the same instant fire in insertion order, so
//! every run is bit-for-bit reproducible regardless of which backend is
//! driving the loop. Consumers lean on the FIFO tie rule for more than
//! reproducibility: the engine's per-link in-flight rings pair ring order
//! with event order through it (a link's `Arrive` instants are
//! non-decreasing, so FIFO ties keep ring pops and event fires aligned).
//! The workspace ships two implementations:
//!
//! * [`HeapScheduler`](crate::heap::HeapScheduler) — the binary-heap
//!   reference implementation: O(log n) schedule/pop, lazy-delete
//!   cancellation.
//! * [`WheelScheduler`](crate::wheel::WheelScheduler) — a hierarchical
//!   timing wheel with O(1) schedule/cancel/rearm, built for the
//!   cancel-heavy RTO/pace timer churn the transport layer generates.
//!
//! Backends are selected at construction time via [`SchedulerKind`]
//! (callers plumb it through their own config; the harness maps the
//! `CEBINAE_SCHED` environment variable onto it once, at `Ctx`
//! construction — this crate never reads the environment).

use crate::time::Time;

/// Handle to a scheduled event, for cancellation or re-arming. Ids are
/// unique for the lifetime of the scheduler (they are the insertion
/// sequence numbers) and are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// Tombstone count below which compaction is never attempted; keeps tiny
/// queues from churning. Shared by both backends so their compaction
/// behaviour (and `discarded_total` trajectories) stay comparable.
pub(crate) const COMPACT_MIN_TOMBSTONES: usize = 64;

/// A deterministic discrete-event scheduler.
///
/// The ordering contract is the heart of the simulator: [`pop`]
/// (Scheduler::pop) yields events in strictly non-decreasing `(Time, seq)`
/// order, where `seq` is the insertion counter — so equal-timestamp events
/// fire FIFO and every backend produces the byte-identical event stream
/// for the same schedule/cancel history.
pub trait Scheduler<E> {
    /// The timestamp of the most recently popped event (the simulation
    /// clock). `Time::ZERO` before any event has fired.
    fn now(&self) -> Time;

    /// Schedule `event` to fire at absolute time `at`, returning a handle
    /// for [`cancel`](Scheduler::cancel) / [`rearm`](Scheduler::rearm).
    /// Fire-and-forget callers use [`post`](Scheduler::post) instead.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is in the past — scheduling into
    /// the past is always a logic error in a discrete-event simulation.
    #[must_use]
    fn schedule(&mut self, at: Time, event: E) -> TimerId;

    /// Fire-and-forget [`schedule`](Scheduler::schedule): for events that
    /// are never cancelled, so the `TimerId` would only be dropped.
    fn post(&mut self, at: Time, event: E) {
        let _ = self.schedule(at, event);
    }

    /// Cancel a pending timer so it never fires.
    ///
    /// Contract: `id` must refer to an event that has **not yet fired** —
    /// callers track timer liveness (the simulator clears its handle when
    /// the event is dispatched). Cancelling an already-fired id is a logic
    /// error (it would poison `len`); cancelling the same still-pending id
    /// twice is a no-op returning `false`.
    fn cancel(&mut self, id: TimerId) -> bool;

    /// Cancel `id` and schedule `event` at `at` in one call — the RTO /
    /// pace-timer pattern. Returns the replacement handle.
    ///
    /// A rearm is a cancel **plus** a schedule: the replacement gets a
    /// fresh sequence number and both the `scheduled_total` and
    /// `cancelled_total` counters bump. There is no cheaper "move this
    /// event" operation, by contract — which is why hot paths that want
    /// fewer scheduler ops must post fewer events, not rearm standing
    /// ones.
    #[must_use]
    fn rearm(&mut self, id: TimerId, at: Time, event: E) -> TimerId {
        self.cancel(id);
        self.schedule(at, event)
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    /// Cancelled entries encountered on the way are discarded without
    /// advancing the clock.
    fn pop(&mut self) -> Option<(Time, E)>;

    /// Timestamp of the next live event without popping it. Takes `&mut`
    /// because cancelled entries at the front are pruned on the way.
    fn peek_time(&mut self) -> Option<Time>;

    /// Number of live (non-cancelled) pending events.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (diagnostic).
    fn scheduled_total(&self) -> u64;

    /// Total number of cancellations requested (diagnostic).
    fn cancelled_total(&self) -> u64;

    /// Cancelled entries physically removed so far, lazily or by
    /// compaction (diagnostic; the remainder still sit in the backend as
    /// tombstones).
    fn discarded_total(&self) -> u64;

    /// Overflow cascades performed (diagnostic; hierarchical backends
    /// only — the heap reports 0).
    fn cascades_total(&self) -> u64 {
        0
    }

    /// Physically stored entries, live *and* tombstoned (diagnostic;
    /// backends without tombstones report `len`).
    fn occupied(&self) -> usize {
        self.len()
    }
}

/// Which [`Scheduler`] backend to construct. Defaults to the timing wheel;
/// the heap remains available as the reference implementation for
/// differential testing (`CEBINAE_SCHED=heap` via the harness `Ctx`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Binary heap with lazy-delete tombstones (reference implementation).
    Heap,
    /// Hierarchical timing wheel: O(1) schedule/cancel/rearm.
    #[default]
    Wheel,
}

impl SchedulerKind {
    /// Parse a backend name as used by `CEBINAE_SCHED` (`heap` / `wheel`,
    /// case-insensitive, surrounding whitespace ignored — env values are
    /// hand-typed, and a silent fallback to the default would be worse
    /// than forgiving the casing).
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" => Some(SchedulerKind::Heap),
            "wheel" => Some(SchedulerKind::Wheel),
            _ => None,
        }
    }

    /// Stable lower-case name (`heap` / `wheel`), the `parse` inverse.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// Construct a boxed scheduler of this kind.
    pub fn build<E: Send + 'static>(self) -> Box<dyn Scheduler<E> + Send> {
        match self {
            SchedulerKind::Heap => Box::new(crate::heap::HeapScheduler::new()),
            SchedulerKind::Wheel => Box::new(crate::wheel::WheelScheduler::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrips() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            assert_eq!(SchedulerKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("btree"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Wheel);
    }

    #[test]
    fn build_constructs_the_requested_backend() {
        let mut h = SchedulerKind::Heap.build::<u32>();
        let mut w = SchedulerKind::Wheel.build::<u32>();
        h.post(Time(5), 1);
        w.post(Time(5), 1);
        assert_eq!(h.pop(), Some((Time(5), 1)));
        assert_eq!(w.pop(), Some((Time(5), 1)));
        assert_eq!(h.cascades_total(), 0);
    }
}
