//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`, where the sequence number is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore fire in insertion order, which makes every run of
//! the simulator bit-for-bit reproducible — a property the integration tests
//! assert and which the experiment harness relies on for seeded trials.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An event queue entry. `E` is the caller's event payload type.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking at equal timestamps.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock). `Time::ZERO` before any event has fired.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is in the past — scheduling into the
    /// past is always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: Time, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(5), "c");
        q.schedule(Time::from_millis(1), "a");
        q.schedule(Time::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.schedule(Time::from_secs(1), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(1));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn schedule_while_draining() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Events scheduled at the current instant still fire.
        q.schedule(t, 2);
        q.schedule(t + Duration::from_secs(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.pop();
        q.schedule(Time::from_secs(1), ());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_secs(1), ());
        q.schedule(Time::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.pop();
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), None);
    }
}
