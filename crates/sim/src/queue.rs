//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`, where the sequence number is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore fire in insertion order, which makes every run of
//! the simulator bit-for-bit reproducible — a property the integration tests
//! assert and which the experiment harness relies on for seeded trials.
//!
//! ## Cancellable timers (lazy delete)
//!
//! Timer-like events (TCP RTO, pacing) are scheduled far in the future and
//! frequently obsoleted before they fire. Removing an arbitrary entry from a
//! binary heap is O(n), so cancellation is **lazy**: [`EventQueue::cancel`]
//! records the timer's id in a tombstone set and the entry is discarded the
//! moment it surfaces at the heap top (during [`pop`](EventQueue::pop) or
//! [`peek_time`](EventQueue::peek_time)) — no dispatch, no payload
//! construction, no clock movement. When tombstones accumulate past half
//! the heap, the heap is compacted in one O(n) sweep so cancelled far-future
//! timers cannot pin memory. Live ordering, including FIFO tie-breaking, is
//! unaffected.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::Time;

/// An event queue entry. `E` is the caller's event payload type.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle to a scheduled event, for cancellation. Ids are unique for the
/// lifetime of the queue (they are the insertion sequence numbers) and are
/// never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerId(u64);

/// Tombstone count below which compaction is never attempted; keeps tiny
/// queues from churning.
const COMPACT_MIN_TOMBSTONES: usize = 64;

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking at equal timestamps and O(log n) lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
    /// Sequence numbers of cancelled-but-still-heaped entries.
    cancelled: BTreeSet<u64>,
    cancelled_total: u64,
    discarded_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            cancelled: BTreeSet::new(),
            cancelled_total: 0,
            discarded_total: 0,
        }
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock). `Time::ZERO` before any event has fired.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is in the past — scheduling into the
    /// past is always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: Time, event: E) {
        let _ = self.schedule_timer(at, event);
    }

    /// Schedule `event` at `at` and return a handle that can later be
    /// passed to [`cancel`](EventQueue::cancel).
    pub fn schedule_timer(&mut self, at: Time, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        TimerId(seq)
    }

    /// Cancel a pending timer. The entry stays in the heap but is silently
    /// discarded when it reaches the top (lazy delete); heavy tombstone
    /// build-up triggers an O(n) compaction.
    ///
    /// Contract: `id` must refer to an event that has **not yet fired** —
    /// callers track timer liveness (the simulator clears its handle when
    /// the event is dispatched). Cancelling an already-fired id is a logic
    /// error (it would poison `len`); cancelling the same still-pending id
    /// twice is a no-op returning `false`.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.cancelled.insert(id.0) {
            self.cancelled_total += 1;
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// One O(n) sweep dropping every tombstoned entry, run when cancelled
    /// entries outnumber live ones (and there are enough to matter).
    fn maybe_compact(&mut self) {
        if self.cancelled.len() < COMPACT_MIN_TOMBSTONES
            || self.cancelled.len() * 2 <= self.heap.len()
        {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        self.discarded_total += cancelled.len() as u64;
        self.heap.retain(|e| !cancelled.contains(&e.seq));
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    /// Cancelled entries encountered on the way are discarded without
    /// advancing the clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            let entry = self.heap.pop()?;
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            if self.cancelled.remove(&entry.seq) {
                self.discarded_total += 1;
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
    }

    /// Timestamp of the next live event without popping it. Takes `&mut`
    /// because cancelled entries at the top are pruned on the way.
    pub fn peek_time(&mut self) -> Option<Time> {
        loop {
            let head = self.heap.peek()?;
            if !self.cancelled.contains(&head.seq) {
                return Some(head.at);
            }
            let seq = head.seq;
            self.heap.pop();
            self.cancelled.remove(&seq);
            self.discarded_total += 1;
        }
    }

    /// Number of live (non-cancelled) pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of cancellations requested (diagnostic).
    #[inline]
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Cancelled entries actually removed so far, lazily or by compaction
    /// (diagnostic; the remainder still sit in the heap as tombstones).
    #[inline]
    pub fn discarded_total(&self) -> u64 {
        self.discarded_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(5), "c");
        q.schedule(Time::from_millis(1), "a");
        q.schedule(Time::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.schedule(Time::from_secs(1), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(1));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn schedule_while_draining() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Events scheduled at the current instant still fire.
        q.schedule(t, 2);
        q.schedule(t + Duration::from_secs(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(2), ());
        q.pop();
        q.schedule(Time::from_secs(1), ());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::from_secs(1), ());
        q.schedule(Time::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.pop();
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule_timer(Time::from_secs(1), "a");
        let _b = q.schedule_timer(Time::from_secs(2), "b");
        let c = q.schedule_timer(Time::from_secs(3), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(c));
        assert_eq!(q.len(), 1);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired, ["b"]);
        assert_eq!(q.cancelled_total(), 2);
        assert_eq!(q.discarded_total(), 2);
    }

    #[test]
    fn cancelled_head_does_not_advance_clock() {
        let mut q = EventQueue::new();
        let early = q.schedule_timer(Time::from_secs(1), 1u32);
        q.schedule(Time::from_secs(5), 2u32);
        q.cancel(early);
        // The cancelled 1 s entry is skipped without the clock visiting 1 s.
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_secs(5), 2));
        assert_eq!(q.now(), Time::from_secs(5));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_timer(Time::from_secs(1), ());
        q.schedule(Time::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.pop().unwrap().0, Time::from_secs(2));
    }

    #[test]
    fn double_cancel_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_timer(Time::from_secs(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.cancelled_total(), 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn rearm_pattern_preserves_order() {
        // The simulator's RTO pattern: cancel the pending timer, schedule a
        // new one at a different deadline, interleaved with data events.
        let mut q = EventQueue::new();
        let mut rto = q.schedule_timer(Time::from_millis(300), "rto");
        for i in 0..10u64 {
            q.schedule(Time::from_millis(10 * (i + 1)), "data");
            q.cancel(rto);
            rto = q.schedule_timer(Time::from_millis(300 + 10 * i), "rto");
        }
        let mut fired = Vec::new();
        while let Some((t, e)) = q.pop() {
            fired.push((t, e));
        }
        assert_eq!(fired.iter().filter(|(_, e)| *e == "rto").count(), 1);
        assert_eq!(fired.last().unwrap(), &(Time::from_millis(390), "rto"));
        assert_eq!(fired.len(), 11);
    }

    #[test]
    fn compaction_drops_far_future_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..200u64)
            .map(|i| q.schedule_timer(Time::from_secs(1000 + i), i))
            .collect();
        q.schedule(Time::from_secs(1), u64::MAX);
        // Cancel enough for tombstones to outnumber live entries.
        for id in &ids[..150] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 51);
        // At least one compaction fired (tombstones exceeded half the heap),
        // physically removing a batch of entries without any pops.
        assert!(q.discarded_total() >= COMPACT_MIN_TOMBSTONES as u64);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired.len(), 51);
        assert_eq!(fired[0], u64::MAX);
        assert_eq!(fired[1..], (150..200u64).collect::<Vec<_>>()[..]);
        assert_eq!(q.discarded_total(), 150);
    }

    #[test]
    fn len_accounts_for_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_timer(Time::from_secs(1), ());
        q.schedule(Time::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
