//! Simulated time: a nanosecond-resolution, 64-bit virtual clock.
//!
//! All of the reproduction's components (links, qdiscs, TCP timers, the
//! Cebinae rotation state machine) share this single notion of time. The
//! paper's data plane operates on a hardware nanosecond clock and sizes its
//! round durations as powers of two (`dT = 2^n ns`, `vdT = 2^m ns`, Table 1),
//! so nanoseconds-as-`u64` is a faithful and convenient representation: it
//! covers ~584 years of simulated time and makes the `& vdT_mask` round
//! arithmetic of Figure 5 exact.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl Time {
    pub const ZERO: Time = Time(0);
    /// A sentinel far in the future; used for "never" timers.
    pub const MAX: Time = Time(u64::MAX);

    #[inline]
    pub fn from_secs_f64(s: f64) -> Time {
        debug_assert!(s >= 0.0);
        Time((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Time {
        Time(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration since an earlier instant. Saturates at zero rather than
    /// panicking so metric samplers can be sloppy about ordering.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Round down to a multiple of `quantum` (the Figure 5
    /// `current_time & vdT_mask` operation generalized to non-power-of-two
    /// quanta for safety; for powers of two this is identical to masking).
    #[inline]
    pub fn align_down(self, quantum: Duration) -> Time {
        if quantum.0 == 0 {
            return self;
        }
        Time(self.0 - self.0 % quantum.0)
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        debug_assert!(s >= 0.0);
        Duration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Smallest power-of-two duration that is `>= self`. Cebinae sizes `dT`
    /// and `vdT` as powers of two so round boundaries can be computed with a
    /// mask (Table 1).
    #[inline]
    pub fn next_power_of_two(self) -> Duration {
        Duration(self.0.next_power_of_two())
    }

    #[inline]
    pub fn is_power_of_two(self) -> bool {
        self.0.is_power_of_two()
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: Duration) -> Duration {
        Duration(self.0.min(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: Duration) -> Duration {
        Duration(self.0.max(rhs.0))
    }
}

/// Time to serialize `bytes` onto a link of `rate_bps` bits per second.
///
/// Rounds up so that back-to-back transmissions never exceed the configured
/// line rate.
#[inline]
pub fn tx_time(bytes: u64, rate_bps: u64) -> Duration {
    debug_assert!(rate_bps > 0, "link rate must be positive");
    let bits = bytes as u128 * 8 * NANOS_PER_SEC as u128;
    Duration(bits.div_ceil(rate_bps as u128) as u64)
}

/// Bytes a link of `rate_bps` can carry in `dur` (rounded down).
#[inline]
pub fn bytes_in(rate_bps: u64, dur: Duration) -> u64 {
    (rate_bps as u128 * dur.0 as u128 / (8 * NANOS_PER_SEC as u128)) as u64
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(Time::from_millis(250).as_secs_f64(), 0.25);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Duration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(Time::from_secs_f64(2.0), Time::from_secs(2));
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1);
        let d = Duration::from_millis(500);
        assert_eq!(t + d, Time::from_millis(1500));
        assert_eq!((t + d) - t, d);
        assert_eq!(t + d - d, t);
        assert_eq!(d * 4, Duration::from_secs(2));
        assert_eq!(Duration::from_secs(2) / 4, d);
        assert_eq!(Duration::from_secs(2) / d, 4);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(2);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn align_down_matches_masking_for_pow2() {
        let q = Duration(1 << 20);
        let t = Time(123_456_789_012);
        assert_eq!(t.align_down(q).0, t.0 & !((1u64 << 20) - 1));
        // Zero quantum is a no-op.
        assert_eq!(t.align_down(Duration::ZERO), t);
    }

    #[test]
    fn tx_time_is_exact_for_simple_rates() {
        // 1500 bytes at 1 Gbps = 12 us.
        assert_eq!(tx_time(1500, 1_000_000_000), Duration::from_micros(12));
        // 1500 bytes at 100 Mbps = 120 us.
        assert_eq!(tx_time(1500, 100_000_000), Duration::from_micros(120));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> ceil in ns.
        let d = tx_time(1, 3);
        assert_eq!(d.0, (8 * NANOS_PER_SEC).div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_tx_time_approximately() {
        let rate = 100_000_000;
        let d = tx_time(100_000, rate);
        let b = bytes_in(rate, d);
        assert!(b >= 100_000 && b <= 100_001, "b = {b}");
    }

    #[test]
    fn next_power_of_two() {
        assert_eq!(Duration(1000).next_power_of_two(), Duration(1024));
        assert!(Duration(1 << 26).is_power_of_two());
        assert!(!Duration(3).is_power_of_two());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Duration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Duration(17)), "17ns");
        assert_eq!(format!("{}", Time::from_millis(1500)), "1.500000s");
    }
}
