//! The hierarchical timing-wheel [`Scheduler`] backend.
//!
//! A Varghese/Lauck-style hashed hierarchical wheel specialised for the
//! simulator's nanosecond clock: 11 levels of 64 slots each (6 bits per
//! level, 66 bits ≥ the full `u64` time range), so **schedule, cancel and
//! rearm are O(1)** — the operations the transport layer's RTO/pace timer
//! churn hammers, and exactly where the binary heap's O(log n) +
//! tombstone-compaction costs concentrate.
//!
//! ## Placement
//!
//! The wheel keeps a `cursor`: the lower bound of all stored deadlines
//! (everything before it has been drained). An entry for time `t` lives at
//! level `k` = index of the highest 6-bit group in which `t` differs from
//! the cursor, in slot `(t >> 6k) & 63`. Level 0 slots are exact
//! nanoseconds; higher levels are power-of-two buckets that get **cascaded**
//! (re-filed one or more levels down) when the cursor reaches them. Each
//! entry cascades at most 10 times over its lifetime, so the amortised cost
//! stays constant.
//!
//! ## Determinism
//!
//! Pop order must be byte-identical to the heap backend's `(time, seq)`
//! ordering. Two properties deliver that:
//!
//! * a level-0 slot holds events of exactly one nanosecond, so draining it
//!   and sorting by insertion sequence reproduces FIFO tie-breaking;
//! * cascades only move entries *down* levels and never reorder distinct
//!   times relative to each other (placement is a pure function of
//!   `(t, cursor)`).
//!
//! The drained slot is staged in a `ready` queue; a small `pre` stash
//! catches the peek-then-schedule pattern where the caller schedules an
//! event *behind* the already-advanced cursor (but never behind `now`).
//! Cancellation is lazy exactly like the heap: tombstoned sequence numbers
//! are discarded when their entry surfaces, with the same
//! outnumber-the-live-entries compaction sweep so cancelled far-future
//! timers cannot pin memory.

use std::collections::VecDeque;

use cebinae_ds::DetSet;

use crate::sched::{Scheduler, TimerId, COMPACT_MIN_TOMBSTONES};
use crate::time::Time;

/// Bits of time resolved per level.
const LEVEL_BITS: usize = 6;
/// Slots per level (`1 << LEVEL_BITS`).
const SLOTS: usize = 64;
/// Levels: `ceil(64 / LEVEL_BITS)` covers the whole `u64` range.
const LEVELS: usize = 11;

/// A hierarchical timing wheel: O(1) schedule/cancel/rearm, pop order
/// byte-identical to [`HeapScheduler`](crate::heap::HeapScheduler).
pub struct WheelScheduler<E> {
    /// `LEVELS * SLOTS` buckets, indexed `level * SLOTS + slot`. Each
    /// bucket holds `(deadline_ns, seq, event)` in insertion order.
    slots: Vec<Vec<(u64, u64, E)>>,
    /// Per-level occupancy bitmap: bit `s` set iff `slots[k*SLOTS+s]` is
    /// non-empty. Turns find-next-slot into a trailing_zeros.
    occ: [u64; LEVELS],
    /// Lower bound (ns) of every deadline stored in `slots`; advances
    /// monotonically as slots are drained.
    cursor: u64,
    now: Time,
    next_seq: u64,
    /// Physical entries across `slots` + `ready` + `pre`, tombstones
    /// included.
    stored: usize,
    /// The drained level-0 slot, sorted by seq; all share `ready_at`.
    ready: VecDeque<(u64, E)>,
    ready_at: Time,
    /// Entries scheduled behind the cursor (only possible between a peek
    /// that advanced the wheel and the pops that drain `ready`); always
    /// strictly earlier than `ready_at`, so they pop first.
    pre: Vec<(Time, u64, E)>,
    /// Sequence numbers of cancelled-but-still-stored entries.
    cancelled: DetSet<u64>,
    cancelled_total: u64,
    discarded_total: u64,
    cascades_total: u64,
}

impl<E> Default for WheelScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelScheduler<E> {
    pub fn new() -> Self {
        WheelScheduler {
            slots: std::iter::repeat_with(Vec::new).take(LEVELS * SLOTS).collect(),
            occ: [0; LEVELS],
            cursor: 0,
            now: Time::ZERO,
            next_seq: 0,
            stored: 0,
            ready: VecDeque::new(),
            ready_at: Time::ZERO,
            pre: Vec::new(),
            cancelled: DetSet::new(),
            cancelled_total: 0,
            discarded_total: 0,
            cascades_total: 0,
        }
    }

    /// Level of deadline `t` relative to `cursor`: the highest 6-bit group
    /// where they differ (0 when equal or within the same 64 ns window).
    #[inline]
    fn level_for(t: u64, cursor: u64) -> usize {
        let diff = t ^ cursor;
        if diff < SLOTS as u64 {
            0
        } else {
            // det-ok: diff >= 64 so leading_zeros <= 57 and the subtraction
            // cannot underflow; result is a level index in 1..=10.
            (63 - diff.leading_zeros() as usize) / LEVEL_BITS
        }
    }

    /// File a live entry (deadline `t >= self.cursor`) into its slot.
    #[inline]
    fn file(&mut self, t: u64, seq: u64, event: E) {
        debug_assert!(t >= self.cursor);
        let k = Self::level_for(t, self.cursor);
        let s = ((t >> (LEVEL_BITS * k)) & (SLOTS as u64 - 1)) as usize;
        self.slots[k * SLOTS + s].push((t, seq, event));
        self.occ[k] |= 1u64 << s;
    }

    /// Empty `slots[k*SLOTS+s]`, dropping tombstones and re-filing live
    /// entries against the *current* cursor. By construction every re-filed
    /// entry lands strictly below level `k`.
    fn cascade_slot(&mut self, k: usize, s: usize) {
        let entries = std::mem::take(&mut self.slots[k * SLOTS + s]);
        self.occ[k] &= !(1u64 << s);
        for (t, seq, event) in entries {
            if self.cancelled.remove(&seq) {
                self.discarded_total += 1;
                self.stored -= 1;
                continue;
            }
            self.file(t, seq, event);
        }
    }

    /// Advance the wheel until the next level-0 slot with a live entry has
    /// been drained into `ready` (sorted by seq), or everything left was a
    /// tombstone and `stored` hit zero. Precondition: `pre` and `ready`
    /// are empty.
    fn fill_ready(&mut self) {
        debug_assert!(self.pre.is_empty() && self.ready.is_empty());
        while self.stored > 0 {
            // Level-0 slots at or after the cursor's index. Slots before it
            // are necessarily empty (every stored time is >= cursor, and a
            // level-0 time shares the cursor's upper 58 bits).
            // det-ok: masked to 0..64 by `& (SLOTS - 1)`, so u32 cannot truncate
            let c0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let m0 = self.occ[0] & (u64::MAX << c0);
            if m0 != 0 {
                let s = m0.trailing_zeros() as usize;
                let tt = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
                self.cursor = tt;
                let mut entries = std::mem::take(&mut self.slots[s]);
                self.occ[0] &= !(1u64 << s);
                // One level-0 slot == one nanosecond; seq order is FIFO.
                entries.sort_unstable_by_key(|e| e.1);
                self.ready_at = Time(tt);
                let mut any_live = false;
                for (t, seq, event) in entries {
                    debug_assert_eq!(t, tt);
                    if self.cancelled.remove(&seq) {
                        self.discarded_total += 1;
                        self.stored -= 1;
                        continue;
                    }
                    self.ready.push_back((seq, event));
                    any_live = true;
                }
                if any_live {
                    return;
                }
                continue;
            }
            // Level 0 empty: advance the cursor to the lowest occupied
            // higher-level slot's window start and cascade it down.
            let Some(k) = (1..LEVELS).find(|&k| self.occ[k] != 0) else {
                debug_assert_eq!(self.stored, 0, "stored entries but empty wheel");
                return;
            };
            let s = self.occ[k].trailing_zeros() as usize;
            // Keep the cursor bits above level k, set level k to `s`, zero
            // everything below: the window start of the slot being drained.
            // det-ok: at most LEVEL_BITS * LEVELS = 66, far below u32::MAX
            let shift = (LEVEL_BITS * (k + 1)) as u32;
            let keep = if shift >= 64 { 0 } else { u64::MAX << shift };
            self.cursor = (self.cursor & keep) | ((s as u64) << (LEVEL_BITS * k));
            self.cascades_total += 1;
            self.cascade_slot(k, s);
        }
    }

    /// Index of the earliest `(time, seq)` entry in `pre`, if any.
    fn pre_min(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, (t, seq, _)) in self.pre.iter().enumerate() {
            match best {
                Some(b) if (self.pre[b].0, self.pre[b].1) <= (*t, *seq) => {}
                _ => best = Some(i),
            }
        }
        best
    }

    /// One O(n) sweep dropping every tombstoned entry, run when cancelled
    /// entries outnumber live ones (and there are enough to matter) — the
    /// same policy as the heap backend.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() < COMPACT_MIN_TOMBSTONES
            || self.cancelled.len() * 2 <= self.stored
        {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        // Every tombstone refers to a stored (unfired) entry, so the sweep
        // removes exactly `cancelled.len()` of them.
        self.discarded_total += cancelled.len() as u64;
        self.stored -= cancelled.len();
        for k in 0..LEVELS {
            let mut occ = self.occ[k];
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let slot = &mut self.slots[k * SLOTS + s];
                slot.retain(|e| !cancelled.contains(&e.1));
                if slot.is_empty() {
                    self.occ[k] &= !(1u64 << s);
                }
            }
        }
        self.ready.retain(|e| !cancelled.contains(&e.0));
        self.pre.retain(|e| !cancelled.contains(&e.1));
    }
}

impl<E> Scheduler<E> for WheelScheduler<E> {
    #[inline]
    fn now(&self) -> Time {
        self.now
    }

    fn schedule(&mut self, at: Time, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stored += 1;
        if at.0 < self.cursor {
            // Behind the already-advanced cursor (peek-then-schedule):
            // strictly earlier than `ready_at`, delivered before `ready`.
            self.pre.push((at, seq, event));
        } else {
            self.file(at.0, seq, event);
        }
        TimerId(seq)
    }

    fn cancel(&mut self, id: TimerId) -> bool {
        if self.cancelled.insert(id.0) {
            self.cancelled_total += 1;
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            if let Some(i) = self.pre_min() {
                let (t, seq, event) = self.pre.swap_remove(i);
                self.stored -= 1;
                if self.cancelled.remove(&seq) {
                    self.discarded_total += 1;
                    continue;
                }
                debug_assert!(t >= self.now, "event queue went backwards");
                self.now = t;
                return Some((t, event));
            }
            if let Some((seq, event)) = self.ready.pop_front() {
                self.stored -= 1;
                if self.cancelled.remove(&seq) {
                    self.discarded_total += 1;
                    continue;
                }
                debug_assert!(self.ready_at >= self.now, "event queue went backwards");
                self.now = self.ready_at;
                return Some((self.ready_at, event));
            }
            if self.stored == 0 {
                return None;
            }
            self.fill_ready();
        }
    }

    fn peek_time(&mut self) -> Option<Time> {
        loop {
            if let Some(i) = self.pre_min() {
                let seq = self.pre[i].1;
                if self.cancelled.remove(&seq) {
                    self.pre.swap_remove(i);
                    self.discarded_total += 1;
                    self.stored -= 1;
                    continue;
                }
                return Some(self.pre[i].0);
            }
            if let Some(&(seq, _)) = self.ready.front() {
                if self.cancelled.remove(&seq) {
                    self.ready.pop_front();
                    self.discarded_total += 1;
                    self.stored -= 1;
                    continue;
                }
                return Some(self.ready_at);
            }
            if self.stored == 0 {
                return None;
            }
            self.fill_ready();
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.stored - self.cancelled.len()
    }

    #[inline]
    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    #[inline]
    fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    #[inline]
    fn discarded_total(&self) -> u64 {
        self.discarded_total
    }

    #[inline]
    fn cascades_total(&self) -> u64 {
        self.cascades_total
    }

    /// Physical entries across slots, ready staging and the pre stash,
    /// tombstones included.
    #[inline]
    fn occupied(&self) -> usize {
        self.stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelScheduler::new();
        q.post(Time::from_millis(5), "c");
        q.post(Time::from_millis(1), "a");
        q.post(Time::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = WheelScheduler::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.post(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = WheelScheduler::new();
        q.post(Time::from_secs(2), ());
        q.post(Time::from_secs(1), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(1));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn schedule_while_draining() {
        let mut q = WheelScheduler::new();
        q.post(Time::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Events scheduled at the current instant still fire.
        q.post(t, 2);
        q.post(t + Duration::from_secs(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = WheelScheduler::new();
        q.post(Time::from_secs(2), ());
        q.pop();
        q.post(Time::from_secs(1), ());
    }

    #[test]
    fn counters() {
        let mut q = WheelScheduler::new();
        assert!(q.is_empty());
        q.post(Time::from_secs(1), ());
        q.post(Time::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.pop();
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut q = WheelScheduler::new();
        let a = q.schedule(Time::from_secs(1), "a");
        let _b = q.schedule(Time::from_secs(2), "b");
        let c = q.schedule(Time::from_secs(3), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(c));
        assert_eq!(q.len(), 1);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired, ["b"]);
        assert_eq!(q.cancelled_total(), 2);
        assert_eq!(q.discarded_total(), 2);
    }

    #[test]
    fn cancelled_head_does_not_advance_clock() {
        let mut q = WheelScheduler::new();
        let early = q.schedule(Time::from_secs(1), 1u32);
        q.post(Time::from_secs(5), 2u32);
        q.cancel(early);
        // The cancelled 1 s entry is skipped without the clock visiting 1 s.
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_secs(5), 2));
        assert_eq!(q.now(), Time::from_secs(5));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = WheelScheduler::new();
        let a = q.schedule(Time::from_secs(1), ());
        q.post(Time::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.pop().unwrap().0, Time::from_secs(2));
    }

    #[test]
    fn double_cancel_is_a_noop() {
        let mut q = WheelScheduler::new();
        let a = q.schedule(Time::from_secs(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.cancelled_total(), 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn rearm_pattern_preserves_order() {
        let mut q = WheelScheduler::new();
        let mut rto = q.schedule(Time::from_millis(300), "rto");
        for i in 0..10u64 {
            q.post(Time::from_millis(10 * (i + 1)), "data");
            rto = q.rearm(rto, Time::from_millis(300 + 10 * i), "rto");
        }
        let mut fired = Vec::new();
        while let Some((t, e)) = q.pop() {
            fired.push((t, e));
        }
        assert_eq!(fired.iter().filter(|(_, e)| *e == "rto").count(), 1);
        assert_eq!(fired.last().unwrap(), &(Time::from_millis(390), "rto"));
        assert_eq!(fired.len(), 11);
    }

    #[test]
    fn compaction_drops_far_future_tombstones() {
        let mut q = WheelScheduler::new();
        let ids: Vec<_> = (0..200u64)
            .map(|i| q.schedule(Time::from_secs(1000 + i), i))
            .collect();
        q.post(Time::from_secs(1), u64::MAX);
        for id in &ids[..150] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 51);
        assert!(q.discarded_total() >= COMPACT_MIN_TOMBSTONES as u64);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired.len(), 51);
        assert_eq!(fired[0], u64::MAX);
        assert_eq!(fired[1..], (150..200u64).collect::<Vec<_>>()[..]);
        assert_eq!(q.discarded_total(), 150);
    }

    #[test]
    fn len_accounts_for_tombstones() {
        let mut q = WheelScheduler::new();
        let a = q.schedule(Time::from_secs(1), ());
        q.post(Time::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    // ------------------------------------------------------------------
    // Wheel-specific behaviour.

    #[test]
    fn far_future_deadlines_cascade_down() {
        let mut q = WheelScheduler::new();
        // Deadlines spanning many levels, including the topmost.
        q.post(Time(u64::MAX), "max");
        q.post(Time(1), "near");
        q.post(Time(1 << 40), "far");
        assert_eq!(q.pop(), Some((Time(1), "near")));
        assert_eq!(q.pop(), Some((Time(1 << 40), "far")));
        assert_eq!(q.pop(), Some((Time(u64::MAX), "max")));
        assert!(q.pop().is_none());
        assert!(q.cascades_total() > 0);
    }

    #[test]
    fn window_crossing_preserves_order() {
        // Deadlines straddling every 64 ns window boundary near the cursor.
        let mut q = WheelScheduler::new();
        let times = [63u64, 64, 65, 127, 128, 4095, 4096, 4097];
        for (i, t) in times.iter().enumerate() {
            q.post(Time(*t), i);
        }
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let expect: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (Time(*t), i))
            .collect();
        assert_eq!(fired, expect);
    }

    #[test]
    fn peek_then_schedule_behind_cursor_pops_in_order() {
        // A peek advances the wheel (cursor moves to the peeked slot); a
        // subsequent schedule between `now` and the cursor must still pop
        // before the peeked event.
        let mut q = WheelScheduler::new();
        q.post(Time(1000), "late");
        assert_eq!(q.peek_time(), Some(Time(1000)));
        q.post(Time(10), "early");
        q.post(Time(10), "early2");
        assert_eq!(q.pop(), Some((Time(10), "early")));
        assert_eq!(q.pop(), Some((Time(10), "early2")));
        assert_eq!(q.pop(), Some((Time(1000), "late")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_entry_in_pre_stash() {
        let mut q = WheelScheduler::new();
        q.post(Time(1000), "late");
        assert_eq!(q.peek_time(), Some(Time(1000)));
        let early = q.schedule(Time(10), "early");
        q.cancel(early);
        assert_eq!(q.peek_time(), Some(Time(1000)));
        assert_eq!(q.pop(), Some((Time(1000), "late")));
        assert_eq!(q.discarded_total(), 1);
    }

    #[test]
    fn occupied_counts_tombstones() {
        let mut q = WheelScheduler::new();
        let a = q.schedule(Time(100), ());
        q.post(Time(200), ());
        q.cancel(a);
        assert_eq!(q.occupied(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn dense_same_slot_burst_across_levels() {
        // Many events at the same far-future instant cascade as a group
        // and still fire FIFO.
        let mut q = WheelScheduler::new();
        let t = Time::from_secs(900); // high level relative to cursor 0
        for i in 0..50u64 {
            q.post(t, i);
        }
        q.post(Time(5), u64::MAX);
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired, (0..50).collect::<Vec<_>>());
    }
}
