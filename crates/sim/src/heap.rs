//! The binary-heap [`Scheduler`] backend — the reference implementation.
//!
//! Events are ordered by `(time, sequence)`, where the sequence number is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore fire in insertion order, which makes every run of
//! the simulator bit-for-bit reproducible — a property the integration tests
//! assert and which the experiment harness relies on for seeded trials.
//!
//! ## Cancellable timers (lazy delete)
//!
//! Timer-like events (TCP RTO, pacing) are scheduled far in the future and
//! frequently obsoleted before they fire. Removing an arbitrary entry from a
//! binary heap is O(n), so cancellation is **lazy**: [`Scheduler::cancel`]
//! records the timer's id in a tombstone set and the entry is discarded the
//! moment it surfaces at the heap top (during [`pop`](Scheduler::pop) or
//! [`peek_time`](Scheduler::peek_time)) — no dispatch, no payload
//! construction, no clock movement. When tombstones accumulate past half
//! the heap, the heap is compacted in one O(n) sweep so cancelled far-future
//! timers cannot pin memory. Live ordering, including FIFO tie-breaking, is
//! unaffected.
//!
//! The wheel backend ([`crate::wheel`]) makes cancel/rearm O(1); this heap
//! remains the oracle the wheel is differentially tested against.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::sched::{Scheduler, TimerId, COMPACT_MIN_TOMBSTONES};
use crate::time::Time;

/// An event queue entry. `E` is the caller's event payload type.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking at equal timestamps and O(log n) lazy cancellation.
pub struct HeapScheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
    /// Sequence numbers of cancelled-but-still-heaped entries.
    cancelled: BTreeSet<u64>,
    cancelled_total: u64,
    discarded_total: u64,
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapScheduler<E> {
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            cancelled: BTreeSet::new(),
            cancelled_total: 0,
            discarded_total: 0,
        }
    }

    /// One O(n) sweep dropping every tombstoned entry, run when cancelled
    /// entries outnumber live ones (and there are enough to matter).
    fn maybe_compact(&mut self) {
        if self.cancelled.len() < COMPACT_MIN_TOMBSTONES
            || self.cancelled.len() * 2 <= self.heap.len()
        {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        self.discarded_total += cancelled.len() as u64;
        self.heap.retain(|e| !cancelled.contains(&e.seq));
    }
}

impl<E> Scheduler<E> for HeapScheduler<E> {
    #[inline]
    fn now(&self) -> Time {
        self.now
    }

    fn schedule(&mut self, at: Time, event: E) -> TimerId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        TimerId(seq)
    }

    fn cancel(&mut self, id: TimerId) -> bool {
        if self.cancelled.insert(id.0) {
            self.cancelled_total += 1;
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            let entry = self.heap.pop()?;
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            if self.cancelled.remove(&entry.seq) {
                self.discarded_total += 1;
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
    }

    fn peek_time(&mut self) -> Option<Time> {
        loop {
            let head = self.heap.peek()?;
            if !self.cancelled.contains(&head.seq) {
                return Some(head.at);
            }
            let seq = head.seq;
            self.heap.pop();
            self.cancelled.remove(&seq);
            self.discarded_total += 1;
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    #[inline]
    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    #[inline]
    fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    #[inline]
    fn discarded_total(&self) -> u64 {
        self.discarded_total
    }

    /// The heap stores tombstones in place, so occupancy is the physical
    /// heap length.
    #[inline]
    fn occupied(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapScheduler::new();
        q.post(Time::from_millis(5), "c");
        q.post(Time::from_millis(1), "a");
        q.post(Time::from_millis(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = HeapScheduler::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.post(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = HeapScheduler::new();
        q.post(Time::from_secs(2), ());
        q.post(Time::from_secs(1), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_secs(1));
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn schedule_while_draining() {
        let mut q = HeapScheduler::new();
        q.post(Time::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Events scheduled at the current instant still fire.
        q.post(t, 2);
        q.post(t + Duration::from_secs(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn past_scheduling_panics_in_debug() {
        let mut q = HeapScheduler::new();
        q.post(Time::from_secs(2), ());
        q.pop();
        q.post(Time::from_secs(1), ());
    }

    #[test]
    fn counters() {
        let mut q = HeapScheduler::new();
        assert!(q.is_empty());
        q.post(Time::from_secs(1), ());
        q.post(Time::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.pop();
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut q = HeapScheduler::new();
        let a = q.schedule(Time::from_secs(1), "a");
        let _b = q.schedule(Time::from_secs(2), "b");
        let c = q.schedule(Time::from_secs(3), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(c));
        assert_eq!(q.len(), 1);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired, ["b"]);
        assert_eq!(q.cancelled_total(), 2);
        assert_eq!(q.discarded_total(), 2);
    }

    #[test]
    fn cancelled_head_does_not_advance_clock() {
        let mut q = HeapScheduler::new();
        let early = q.schedule(Time::from_secs(1), 1u32);
        q.post(Time::from_secs(5), 2u32);
        q.cancel(early);
        // The cancelled 1 s entry is skipped without the clock visiting 1 s.
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_secs(5), 2));
        assert_eq!(q.now(), Time::from_secs(5));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = HeapScheduler::new();
        let a = q.schedule(Time::from_secs(1), ());
        q.post(Time::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.pop().unwrap().0, Time::from_secs(2));
    }

    #[test]
    fn double_cancel_is_a_noop() {
        let mut q = HeapScheduler::new();
        let a = q.schedule(Time::from_secs(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.cancelled_total(), 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn rearm_pattern_preserves_order() {
        // The simulator's RTO pattern: re-arm the pending timer at a new
        // deadline, interleaved with data events.
        let mut q = HeapScheduler::new();
        let mut rto = q.schedule(Time::from_millis(300), "rto");
        for i in 0..10u64 {
            q.post(Time::from_millis(10 * (i + 1)), "data");
            rto = q.rearm(rto, Time::from_millis(300 + 10 * i), "rto");
        }
        let mut fired = Vec::new();
        while let Some((t, e)) = q.pop() {
            fired.push((t, e));
        }
        assert_eq!(fired.iter().filter(|(_, e)| *e == "rto").count(), 1);
        assert_eq!(fired.last().unwrap(), &(Time::from_millis(390), "rto"));
        assert_eq!(fired.len(), 11);
    }

    #[test]
    fn compaction_drops_far_future_tombstones() {
        let mut q = HeapScheduler::new();
        let ids: Vec<_> = (0..200u64)
            .map(|i| q.schedule(Time::from_secs(1000 + i), i))
            .collect();
        q.post(Time::from_secs(1), u64::MAX);
        // Cancel enough for tombstones to outnumber live entries.
        for id in &ids[..150] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 51);
        // At least one compaction fired (tombstones exceeded half the heap),
        // physically removing a batch of entries without any pops.
        assert!(q.discarded_total() >= COMPACT_MIN_TOMBSTONES as u64);
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(fired.len(), 51);
        assert_eq!(fired[0], u64::MAX);
        assert_eq!(fired[1..], (150..200u64).collect::<Vec<_>>()[..]);
        assert_eq!(q.discarded_total(), 150);
    }

    #[test]
    fn len_accounts_for_tombstones() {
        let mut q = HeapScheduler::new();
        let a = q.schedule(Time::from_secs(1), ());
        q.post(Time::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
