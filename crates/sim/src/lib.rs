//! # cebinae-sim
//!
//! Discrete-event simulation core for the Cebinae (SIGCOMM 2022)
//! reproduction.
//!
//! This crate deliberately contains no networking knowledge; it provides the
//! three primitives every other crate builds on:
//!
//! * [`time`] — a nanosecond-resolution virtual clock ([`Time`],
//!   [`Duration`]) with the power-of-two round arithmetic Cebinae's data
//!   plane uses,
//! * [`queue`] — a deterministic [`EventQueue`] with FIFO tie-breaking at
//!   equal timestamps,
//! * [`rng`] — seeded, derivable random number generators so every
//!   experiment is replayable.
//!
//! The simulator is synchronous and single-threaded by design: simulation is
//! CPU-bound work on one logical timeline, the case where an async runtime
//! buys nothing (parallelism across *trials* is achieved by running multiple
//! independent simulations).

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use time::{bytes_in, tx_time, Duration, Time, NANOS_PER_SEC};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the queue always yields non-decreasing timestamps, for
        /// arbitrary interleavings of schedules.
        #[test]
        fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Time(*t), i);
            }
            let mut last = Time::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// Insertion order is preserved among equal timestamps.
        #[test]
        fn fifo_among_equal_times(n in 1usize..100, t in 0u64..1_000) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Time(t), i);
            }
            let mut expect = 0;
            while let Some((_, i)) = q.pop() {
                prop_assert_eq!(i, expect);
                expect += 1;
            }
        }

        /// tx_time never undershoots the exact rational serialization delay,
        /// and overshoots by less than 1ns.
        #[test]
        fn tx_time_bounds(bytes in 1u64..1_000_000, rate in 1_000u64..100_000_000_000u64) {
            let d = tx_time(bytes, rate);
            let exact = bytes as f64 * 8.0 / rate as f64 * 1e9;
            prop_assert!(d.0 as f64 >= exact - 1e-6);
            prop_assert!((d.0 as f64) < exact + 1.0 + 1e-6);
        }

        /// align_down is idempotent and never increases time.
        #[test]
        fn align_down_props(t in 0u64..u64::MAX / 2, shift in 0u32..40) {
            let q = Duration(1u64 << shift);
            let a = Time(t).align_down(q);
            prop_assert!(a <= Time(t));
            prop_assert_eq!(a.align_down(q), a);
            prop_assert_eq!(a.0 % q.0, 0);
        }
    }
}
