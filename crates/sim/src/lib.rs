//! # cebinae-sim
//!
//! Discrete-event simulation core for the Cebinae (SIGCOMM 2022)
//! reproduction.
//!
//! This crate deliberately contains no networking knowledge; it provides the
//! three primitives every other crate builds on:
//!
//! * [`time`] — a nanosecond-resolution virtual clock ([`Time`],
//!   [`Duration`]) with the power-of-two round arithmetic Cebinae's data
//!   plane uses,
//! * [`sched`] — the pluggable [`Scheduler`] API with deterministic FIFO
//!   tie-breaking at equal timestamps, and its two backends: the
//!   binary-heap reference ([`heap`]) and an O(1) hierarchical timing
//!   wheel ([`wheel`], the default),
//! * [`rng`] — seeded, derivable random number generators (a local
//!   xoshiro256++, no external crates) so every experiment is replayable
//!   and all workspace entropy routes through one auditable module.
//!
//! The simulator is synchronous and single-threaded by design: simulation is
//! CPU-bound work on one logical timeline, the case where an async runtime
//! buys nothing (parallelism across *trials* is achieved by running multiple
//! independent simulations).

pub mod heap;
pub mod rng;
pub mod sched;
pub mod time;
pub mod wheel;

pub use heap::HeapScheduler;
pub use sched::{Scheduler, SchedulerKind, TimerId};
pub use time::{bytes_in, tx_time, Duration, Time, NANOS_PER_SEC};
pub use wheel::WheelScheduler;

// Property tests driven by the crate's own seeded generator: each test
// sweeps a fixed number of deterministically derived random cases, so the
// suite needs no external property-testing dependency and every failure is
// reproducible from the case index alone.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::DetRng;

    /// Popping the queue always yields non-decreasing timestamps, for
    /// arbitrary interleavings of schedules — under both backends.
    #[test]
    fn event_queue_total_order() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            for case in 0..256u64 {
                let mut rng = DetRng::seed_from_u64(0xe0 ^ case);
                let n = rng.gen_range_usize(1, 200);
                let times: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(0, 1_000_000)).collect();
                let mut q = kind.build();
                for (i, t) in times.iter().enumerate() {
                    q.post(Time(*t), i);
                }
                let mut last = Time::ZERO;
                let mut count = 0;
                while let Some((t, _)) = q.pop() {
                    assert!(t >= last, "{} case {case}", kind.label());
                    last = t;
                    count += 1;
                }
                assert_eq!(count, times.len(), "{} case {case}", kind.label());
            }
        }
    }

    /// Insertion order is preserved among equal timestamps — under both
    /// backends.
    #[test]
    fn fifo_among_equal_times() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            for case in 0..256u64 {
                let mut rng = DetRng::seed_from_u64(0xf1f0 ^ case);
                let n = rng.gen_range_usize(1, 100);
                let t = rng.gen_range_u64(0, 1_000);
                let mut q = kind.build();
                for i in 0..n {
                    q.post(Time(t), i);
                }
                let mut expect = 0;
                while let Some((_, i)) = q.pop() {
                    assert_eq!(i, expect, "{} case {case}", kind.label());
                    expect += 1;
                }
            }
        }
    }

    /// Heap and wheel produce the identical `(Time, seq)` pop stream under
    /// randomized schedule / cancel / rearm / interleaved-pop workloads,
    /// including same-timestamp bursts and far-future deadlines that force
    /// wheel cascades. The heap is the ordering oracle; any divergence in
    /// the fired sequence is a wheel bug.
    #[test]
    fn heap_and_wheel_pop_streams_are_identical() {
        for case in 0..192u64 {
            let mut heap = SchedulerKind::Heap.build();
            let mut wheel = SchedulerKind::Wheel.build();
            let mut rng = DetRng::seed_from_u64(0x5c4ed ^ case);
            let mut live: Vec<TimerId> = Vec::new();
            let mut fired: Vec<(Time, u64)> = Vec::new();
            let mut horizon = 0u64; // max of both clocks, in ns

            for _ in 0..400u64 {
                let op = rng.gen_range_u64(0, 100);
                if op < 55 {
                    // Schedule: mostly near-future, sometimes a burst at one
                    // instant, occasionally far enough out to span several
                    // wheel levels (up to ~2^40 ns ahead).
                    let at = if op < 8 {
                        horizon + (1u64 << rng.gen_range_u64(10, 41))
                    } else {
                        horizon + rng.gen_range_u64(0, 5_000)
                    };
                    let burst = if op < 16 { rng.gen_range_u64(2, 6) } else { 1 };
                    for _ in 0..burst {
                        // Payload = the entry's sequence number, so a popped
                        // event identifies which handle just died.
                        let tag = heap.scheduled_total();
                        let ha = heap.schedule(Time(at), tag);
                        let wa = wheel.schedule(Time(at), tag);
                        assert_eq!(ha, wa, "case {case}: TimerId streams diverged");
                        live.push(ha);
                    }
                } else if op < 75 && !live.is_empty() {
                    // Cancel or rearm a random still-live timer.
                    let i = rng.gen_range_usize(0, live.len());
                    let id = live.swap_remove(i);
                    if op < 65 {
                        assert_eq!(heap.cancel(id), wheel.cancel(id), "case {case}");
                    } else {
                        let at = horizon + rng.gen_range_u64(0, 100_000);
                        let tag = heap.scheduled_total();
                        let h = heap.rearm(id, Time(at), tag);
                        let w = wheel.rearm(id, Time(at), tag);
                        assert_eq!(h, w, "case {case}");
                        live.push(h);
                    }
                } else {
                    // Drain a few events, checking byte-identity as we go.
                    // The peek exercises the wheel's cursor-ahead-of-clock
                    // path: later schedules may land behind the cursor.
                    assert_eq!(heap.peek_time(), wheel.peek_time(), "case {case}");
                    for _ in 0..rng.gen_range_u64(1, 4) {
                        let h = heap.pop();
                        let w = wheel.pop();
                        assert_eq!(h, w, "case {case}: pop streams diverged");
                        let Some((t, tag)) = h else { break };
                        fired.push((t, tag));
                        horizon = horizon.max(t.0);
                        live.retain(|id| id.0 != tag);
                    }
                }
            }

            // Final drain: the tails must match exactly too.
            loop {
                let h = heap.pop();
                let w = wheel.pop();
                assert_eq!(h, w, "case {case}: tail diverged");
                if h.is_none() {
                    break;
                }
            }
            assert_eq!(heap.len(), 0, "case {case}");
            assert_eq!(wheel.len(), 0, "case {case}");
            assert_eq!(
                heap.scheduled_total(),
                wheel.scheduled_total(),
                "case {case}"
            );
            assert_eq!(
                heap.cancelled_total(),
                wheel.cancelled_total(),
                "case {case}"
            );
            // Non-decreasing fired timeline (sanity on the oracle itself).
            assert!(fired.windows(2).all(|p| p[0].0 <= p[1].0), "case {case}");
        }
    }

    /// tx_time never undershoots the exact rational serialization delay,
    /// and overshoots by less than 1ns.
    #[test]
    fn tx_time_bounds() {
        for case in 0..256u64 {
            let mut rng = DetRng::seed_from_u64(0x77_0 ^ case);
            let bytes = rng.gen_range_u64(1, 1_000_000);
            let rate = rng.gen_range_u64(1_000, 100_000_000_000);
            let d = tx_time(bytes, rate);
            let exact = bytes as f64 * 8.0 / rate as f64 * 1e9;
            assert!(d.0 as f64 >= exact - 1e-6, "case {case}");
            assert!((d.0 as f64) < exact + 1.0 + 1e-6, "case {case}");
        }
    }

    /// align_down is idempotent and never increases time.
    #[test]
    fn align_down_props() {
        for case in 0..256u64 {
            let mut rng = DetRng::seed_from_u64(0xa11 ^ case);
            let t = rng.gen_range_u64(0, u64::MAX / 2);
            let shift = rng.gen_range_u64(0, 40) as u32;
            let q = Duration(1u64 << shift);
            let a = Time(t).align_down(q);
            assert!(a <= Time(t), "case {case}");
            assert_eq!(a.align_down(q), a, "case {case}");
            assert_eq!(a.0 % q.0, 0, "case {case}");
        }
    }
}
