//! # cebinae-sim
//!
//! Discrete-event simulation core for the Cebinae (SIGCOMM 2022)
//! reproduction.
//!
//! This crate deliberately contains no networking knowledge; it provides the
//! three primitives every other crate builds on:
//!
//! * [`time`] — a nanosecond-resolution virtual clock ([`Time`],
//!   [`Duration`]) with the power-of-two round arithmetic Cebinae's data
//!   plane uses,
//! * [`queue`] — a deterministic [`EventQueue`] with FIFO tie-breaking at
//!   equal timestamps,
//! * [`rng`] — seeded, derivable random number generators (a local
//!   xoshiro256++, no external crates) so every experiment is replayable
//!   and all workspace entropy routes through one auditable module.
//!
//! The simulator is synchronous and single-threaded by design: simulation is
//! CPU-bound work on one logical timeline, the case where an async runtime
//! buys nothing (parallelism across *trials* is achieved by running multiple
//! independent simulations).

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::{EventQueue, TimerId};
pub use time::{bytes_in, tx_time, Duration, Time, NANOS_PER_SEC};

// Property tests driven by the crate's own seeded generator: each test
// sweeps a fixed number of deterministically derived random cases, so the
// suite needs no external property-testing dependency and every failure is
// reproducible from the case index alone.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::DetRng;

    /// Popping the queue always yields non-decreasing timestamps, for
    /// arbitrary interleavings of schedules.
    #[test]
    fn event_queue_total_order() {
        for case in 0..256u64 {
            let mut rng = DetRng::seed_from_u64(0xe0 ^ case);
            let n = rng.gen_range_usize(1, 200);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(0, 1_000_000)).collect();
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Time(*t), i);
            }
            let mut last = Time::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last, "case {case}");
                last = t;
                count += 1;
            }
            assert_eq!(count, times.len(), "case {case}");
        }
    }

    /// Insertion order is preserved among equal timestamps.
    #[test]
    fn fifo_among_equal_times() {
        for case in 0..256u64 {
            let mut rng = DetRng::seed_from_u64(0xf1f0 ^ case);
            let n = rng.gen_range_usize(1, 100);
            let t = rng.gen_range_u64(0, 1_000);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Time(t), i);
            }
            let mut expect = 0;
            while let Some((_, i)) = q.pop() {
                assert_eq!(i, expect, "case {case}");
                expect += 1;
            }
        }
    }

    /// tx_time never undershoots the exact rational serialization delay,
    /// and overshoots by less than 1ns.
    #[test]
    fn tx_time_bounds() {
        for case in 0..256u64 {
            let mut rng = DetRng::seed_from_u64(0x77_0 ^ case);
            let bytes = rng.gen_range_u64(1, 1_000_000);
            let rate = rng.gen_range_u64(1_000, 100_000_000_000);
            let d = tx_time(bytes, rate);
            let exact = bytes as f64 * 8.0 / rate as f64 * 1e9;
            assert!(d.0 as f64 >= exact - 1e-6, "case {case}");
            assert!((d.0 as f64) < exact + 1.0 + 1e-6, "case {case}");
        }
    }

    /// align_down is idempotent and never increases time.
    #[test]
    fn align_down_props() {
        for case in 0..256u64 {
            let mut rng = DetRng::seed_from_u64(0xa11 ^ case);
            let t = rng.gen_range_u64(0, u64::MAX / 2);
            let shift = rng.gen_range_u64(0, 40) as u32;
            let q = Duration(1u64 << shift);
            let a = Time(t).align_down(q);
            assert!(a <= Time(t), "case {case}");
            assert_eq!(a.align_down(q), a, "case {case}");
            assert_eq!(a.0 % q.0, 0, "case {case}");
        }
    }
}
