//! # cebinae-repro
//!
//! Facade crate for the from-scratch Rust reproduction of **Cebinae:
//! Scalable In-network Fairness Augmentation** (SIGCOMM 2022). It
//! re-exports the workspace's crates under one roof and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`prelude`] — or see `README.md` for the guided tour and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use cebinae;
pub use cebinae_engine as engine;
pub use cebinae_faults as faults;
pub use cebinae_fq as fq;
pub use cebinae_harness as harness;
pub use cebinae_metrics as metrics;
pub use cebinae_net as net;
pub use cebinae_sim as sim;
pub use cebinae_traffic as traffic;
pub use cebinae_transport as transport;

/// The common imports for building and running experiments.
pub mod prelude {
    pub use cebinae::{CebinaeConfig, CebinaeQdisc};
    pub use cebinae_engine::{
        cca_mix, dumbbell, parking_lot, Discipline, DumbbellFlow, ParkingLotGroup,
        ScenarioParams, SimConfig, SimResult, Simulation,
    };
    pub use cebinae_faults::{
        chaos_plan, ControlFaultSpec, FaultFamily, FaultPlan, FaultTarget, LinkEvent,
        LinkEventKind, LinkFaultSpec, LossModel, ReorderSpec, StallMode, StallWindow,
    };
    pub use cebinae_metrics::{jfi, jfi_maxmin_normalized, water_filling, MaxMinFlow};
    pub use cebinae_net::{BufferConfig, FlowId, LinkId, Packet, Qdisc, Topology};
    pub use cebinae_sim::{Duration, Time};
    pub use cebinae_transport::{CcKind, TcpConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = CcKind::NewReno.label();
        let _ = Duration::from_millis(1);
        let _ = Discipline::Cebinae.label();
    }
}
