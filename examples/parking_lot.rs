//! Multi-bottleneck max-min fairness (paper §3.2 / Figure 11): Cebinae
//! routers acting independently, each on local information only, push a
//! parking-lot network toward the global max-min allocation computed by
//! water-filling.
//!
//! Topology: three 100 Mbps segments in a chain. 8 NewReno flows cross all
//! three; 2 Bic, 8 Vegas, and 4 Cubic flows each cross one segment.
//!
//! ```sh
//! cargo run --release --example parking_lot
//! ```

use cebinae_repro::prelude::*;

fn main() {
    let groups = vec![
        ParkingLotGroup {
            cc: CcKind::NewReno,
            count: 8,
            enter: 0,
            exit: 3,
            rtt: Duration::from_millis(60),
        },
        ParkingLotGroup {
            cc: CcKind::Bic,
            count: 2,
            enter: 0,
            exit: 1,
            rtt: Duration::from_millis(20),
        },
        ParkingLotGroup {
            cc: CcKind::Vegas,
            count: 8,
            enter: 1,
            exit: 2,
            rtt: Duration::from_millis(20),
        },
        ParkingLotGroup {
            cc: CcKind::Cubic,
            count: 4,
            enter: 2,
            exit: 3,
            rtt: Duration::from_millis(20),
        },
    ];

    // Ideal allocation from the water-filling algorithm (link capacities in
    // Mbps; goodput scale 1448/1500 for header overhead).
    let caps = [100.0f64, 100.0, 100.0];
    let mm_flows: Vec<MaxMinFlow> = groups
        .iter()
        .flat_map(|g| {
            (0..g.count).map(|_| MaxMinFlow::through((g.enter..g.exit).collect::<Vec<_>>()))
        })
        .collect();
    let ideal: Vec<f64> = water_filling(&caps, &mm_flows)
        .into_iter()
        .map(|r| r * 1448.0 / 1500.0)
        .collect();

    println!("Parking lot: 3x100 Mbps segments; 22 flows in 4 groups\n");
    for discipline in [Discipline::Fifo, Discipline::Cebinae] {
        let mut params = ScenarioParams::new(100_000_000, 850, discipline);
        params.duration = Duration::from_secs(40);
        params.cebinae_p = Some(1);
        let (config, _links) = parking_lot(3, &groups, &params);
        let result = Simulation::new(config).run();
        let g: Vec<f64> = result
            .goodputs_bps(Time::from_secs(4))
            .iter()
            .map(|b| b / 1e6)
            .collect();

        println!("{}:", discipline.label());
        let mut idx = 0;
        for grp in &groups {
            let slice = &g[idx..idx + grp.count];
            let avg = slice.iter().sum::<f64>() / grp.count as f64;
            println!(
                "  {:8} x{:<2} avg {avg:6.2} Mbps (ideal {:.2})",
                grp.cc.label(),
                grp.count,
                ideal[idx]
            );
            idx += grp.count;
        }
        let norm = jfi_maxmin_normalized(&g, &ideal);
        println!("  max-min-normalized JFI: {norm:.3}\n");
    }
}
