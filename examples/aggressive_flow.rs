//! The paper's headline scenario (Figure 7): a herd of delay-based TCP
//! Vegas flows versus one loss-based NewReno flow. Under FIFO the NewReno
//! flow takes ~80% of the link; Cebinae redistributes it.
//!
//! ```sh
//! cargo run --release --example aggressive_flow [herd_cca] [hog_cca] [herd_size]
//! cargo run --release --example aggressive_flow vegas bbr 32
//! ```

use cebinae_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let herd_cc: CcKind = args
        .get(1)
        .map(|s| s.parse().expect("unknown CCA"))
        .unwrap_or(CcKind::Vegas);
    let hog_cc: CcKind = args
        .get(2)
        .map(|s| s.parse().expect("unknown CCA"))
        .unwrap_or(CcKind::NewReno);
    let herd: usize = args.get(3).map(|s| s.parse().expect("bad count")).unwrap_or(16);

    let mut flows: Vec<_> = (0..herd).map(|_| DumbbellFlow::new(herd_cc, 50)).collect();
    flows.push(DumbbellFlow::new(hog_cc, 50));

    println!(
        "{herd}x {} vs 1x {} over 100 Mbps (fair share: {:.1} Mbps each)\n",
        herd_cc.label(),
        hog_cc.label(),
        96.5 / (herd + 1) as f64
    );

    for discipline in [Discipline::Fifo, Discipline::FqCoDel, Discipline::Cebinae] {
        let mut params = ScenarioParams::new(100_000_000, 850, discipline);
        params.duration = Duration::from_secs(40);
        params.cebinae_p = Some(1);
        let (config, _) = dumbbell(&flows, &params);
        let result = Simulation::new(config).run();
        let g = result.goodputs_bps(Time::from_secs(4));
        let herd_avg = g[..herd].iter().sum::<f64>() / herd as f64 / 1e6;
        let hog = g[herd] / 1e6;
        println!(
            "{:8}  herd avg {herd_avg:5.2} Mbps   {} {hog:6.2} Mbps   JFI {:.3}",
            discipline.label(),
            hog_cc.label(),
            jfi(&g),
        );
    }
}
