//! The paper's fluid-model intuition, runnable: how fast does Cebinae's
//! τ-compounding taxation pull an aggressive flow to its fair share, and
//! how does the trajectory compare to the packet-level simulation?
//!
//! ```sh
//! cargo run --release --example convergence_model [tau_percent]
//! ```

use cebinae::{rounds_to_converge, FluidFlow, FluidModel};
use cebinae_repro::prelude::*;

fn main() {
    let tau: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse::<f64>().expect("tau percent") / 100.0)
        .unwrap_or(0.01);

    // Fluid model: the paper's Figure 2a (one 6x-aggressive flow vs four).
    println!("Fluid model (paper §3.2, Figure 2a) at τ = {}%:", tau * 100.0);
    println!(
        "closed form ln(1/3)/ln(1-τ): {:.0} rounds for the hog to reach fair share\n",
        rounds_to_converge(6.0, 2.0, tau)
    );
    let mut model = FluidModel {
        capacities: vec![10.0],
        flows: (0..5)
            .map(|i| FluidFlow {
                links: vec![0],
                weight: if i == 0 { 6.0 } else { 1.0 },
                rate: if i == 0 { 6.0 } else { 1.0 },
            })
            .collect(),
        tau,
        delta_p: 0.01,
        delta_f: 0.01,
    };
    println!("round  hog   others  jfi");
    let mut round = 0;
    for target in [0, 20, 50, 100, 200, 400] {
        while round < target {
            model.step();
            round += 1;
        }
        let rates = model.rates();
        println!(
            "{round:5}  {:.2}  {:.2}    {:.3}",
            rates[0],
            rates[1..].iter().sum::<f64>() / 4.0,
            jfi(&rates)
        );
    }

    // Packet-level counterpart: a Scalable-TCP hog vs 4 NewReno flows on a
    // 10 Mbps Cebinae link with matching τ.
    println!("\nPacket-level counterpart (Scalable-TCP hog vs 4 NewReno, 10 Mbps):");
    let mut flows: Vec<_> = (0..4).map(|_| DumbbellFlow::new(CcKind::NewReno, 40)).collect();
    flows.push(DumbbellFlow::new(CcKind::Scalable, 40));
    let mut p = ScenarioParams::new(10_000_000, 100, Discipline::Cebinae);
    p.duration = Duration::from_secs(30);
    p.cebinae_thresholds = (0.01, 0.01, tau);
    p.cebinae_p = Some(1);
    let (cfg, _) = dumbbell(&flows, &p);
    let r = Simulation::new(cfg).run();
    println!("t[s]   hog[Mbps]  others-avg[Mbps]");
    for (i, (t, g)) in r.goodput.rates().iter().enumerate() {
        if i % 50 == 49 {
            println!(
                "{:4.0}   {:9.2}  {:16.2}",
                t.as_secs_f64(),
                g[4] * 8.0 / 1e6,
                g[..4].iter().sum::<f64>() * 8.0 / 4.0 / 1e6
            );
        }
    }
    let g = r.goodputs_bps(Time::from_secs(3));
    println!("\nfinal JFI: {:.3} (fair share {:.2} Mbps/flow)", jfi(&g), 9.65 / 5.0);
}
