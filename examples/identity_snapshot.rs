//! Identity snapshot: a compact, deterministic digest of everything the
//! engine promises to keep byte-stable across refactors and scheduler
//! backends — delivered bytes, event counts, packet traces, telemetry
//! NDJSON, and the fuzzer's oracle verdicts.
//!
//! Run it before and after an engine change and diff the output:
//!
//! ```text
//! cargo run --release --example identity_snapshot > /tmp/pre.txt
//! # ... refactor ...
//! cargo run --release --example identity_snapshot > /tmp/post.txt
//! diff /tmp/pre.txt /tmp/post.txt
//! ```
//!
//! Each scenario prints two telemetry digests: `tel_full` covers the raw
//! NDJSON export, `tel_stable` strips the `sys:sched` scope and the
//! `sys:engine` `sched_*` counters — the only telemetry allowed to move
//! when scheduler mechanics change (backend swaps, op-count refactors).
//! Everything else on a line must never change for these seeds.

use cebinae_check::scenario::GenScenario;
use cebinae_engine::Simulation;
use cebinae_faults::FaultFamily;
use cebinae_sim::SchedulerKind;

/// FNV-1a 64-bit, dependency-free: digest equality here is what "byte
/// identical" means for multi-megabyte artifacts.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drop the telemetry lines scheduler-mechanics changes may legitimately
/// alter: the backend-specific `sys:sched` scope and the API-op counters
/// (`sched_scheduled` / `sched_cancelled` / `sched_live`) in `sys:engine`.
fn stable_telemetry(nd: &str) -> String {
    nd.lines()
        .filter(|l| !l.contains("\"scope\":\"sys:sched\""))
        .filter(|l| !(l.contains("\"scope\":\"sys:engine\"") && l.contains("\"name\":\"sched_")))
        .collect::<Vec<_>>()
        .join("\n")
}

fn snapshot(tag: &str, sc: &GenScenario) {
    let (cfg, _) = sc.build();
    let r = Simulation::new(cfg).run();
    let delivered: Vec<String> = r.delivered.iter().map(|d| d.to_string()).collect();
    let trace: String = r.trace.records().map(|rec| format!("{rec:?};")).collect();
    let nd = r.telemetry.as_deref().unwrap_or("");
    let stable = stable_telemetry(nd);
    let series = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        r.link_tx_series, r.saturated_series, r.cebinae_series, r.completed_at, r.flow_starts
    );
    let (violations, fairness, check_events) = cebinae_check::check_scenario(sc);
    println!("[{tag}] {}", sc.describe());
    println!(
        "  delivered={} ev={} trace_n={} trace_h={:016x} series_h={:016x}",
        delivered.join(","),
        r.events_processed,
        r.trace.records().count(),
        fnv(trace.as_bytes()),
        fnv(series.as_bytes()),
    );
    println!(
        "  tel_full_h={:016x} tel_full_len={} tel_stable_h={:016x} tel_stable_len={}",
        fnv(nd.as_bytes()),
        nd.len(),
        fnv(stable.as_bytes()),
        stable.len(),
    );
    println!(
        "  oracle: check_ev={} violations_h={:016x} n_viol={} fairness={:?}",
        check_events,
        fnv(format!("{violations:?}").as_bytes()),
        violations.len(),
        fairness,
    );
}

fn main() {
    // Clean generated scenarios under both backends: the cross-backend
    // pairs must agree line for line within one snapshot, and every line
    // must survive engine refactors unchanged.
    for seed in 0..8u64 {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut sc = GenScenario::generate(seed);
            sc.duration_ms = sc.duration_ms.min(1000);
            sc.scheduler = kind;
            snapshot(&format!("clean/{}", kind.label()), &sc);
        }
    }
    // Chaos: every fault family, default backend.
    for (seed, fam) in FaultFamily::ALL.iter().enumerate() {
        let mut sc = GenScenario::generate(seed as u64);
        sc.duration_ms = sc.duration_ms.min(1000);
        sc.fault_family = Some(*fam);
        snapshot(&format!("chaos/{fam}"), &sc);
    }
}
