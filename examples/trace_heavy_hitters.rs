//! Heavy-hitter detection on a synthetic ISP backbone trace (the paper's
//! §5.5 / Figure 13 setting): how accurately the passive multi-stage cache
//! identifies the bottlenecked (⊤) flows among hundreds of thousands of
//! flows per minute, as a function of its geometry.
//!
//! ```sh
//! cargo run --release --example trace_heavy_hitters [stages] [slots]
//! ```

use cebinae::HeavyHitterCache;
use cebinae_repro::prelude::*;
use cebinae_repro::sim::rng::experiment_rng;
use cebinae_repro::traffic::{interval_packets, SyntheticTrace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stages: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(2);
    let slots: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(2048);
    let interval = Duration::from_millis(100);

    let mut rng = experiment_rng("trace-example", 0);
    let trace = SyntheticTrace::generate(
        TraceConfig {
            duration: Duration::from_secs(2),
            aggregate_rate_bps: 10e9,
            flows_per_minute: 400_000.0,
            ..TraceConfig::default()
        },
        &mut rng,
    );
    println!(
        "10 Gbps synthetic backbone trace: {} flows over 2 s; cache {stages}x{slots}\n",
        trace.flows.len()
    );

    let mut cache = HeavyHitterCache::new(stages, slots, 42);
    let mut t = Time::ZERO;
    let mut interval_id = 0;
    println!("interval  active-flows  cache-entries  top-truth  top-detected  missed");
    while t + interval <= Time::ZERO + Duration::from_secs(2) {
        let to = t + interval;
        let truth = trace.interval_flow_bytes(t, to);
        for (flow, size) in interval_packets(&truth, &mut rng) {
            cache.update(flow, size as u64);
        }
        let detected = cache.poll_and_reset();
        let top = |counts: &[(FlowId, u64)]| -> Vec<FlowId> {
            let max = counts.iter().map(|&(_, b)| b).max().unwrap_or(0);
            counts
                .iter()
                .filter(|&&(_, b)| b as f64 >= max as f64 * 0.99)
                .map(|&(f, _)| f)
                .collect()
        };
        let truth_top = top(&truth);
        let det_top = top(&detected);
        let missed = truth_top.iter().filter(|f| !det_top.contains(f)).count();
        println!(
            "{interval_id:8}  {:12}  {:13}  {:9}  {:12}  {missed:6}",
            truth.len(),
            detected.len(),
            truth_top.len(),
            det_top.len()
        );
        t = to;
        interval_id += 1;
    }
    println!("\nA miss means a top flow lost every hash slot to earlier flows in all");
    println!("{stages} stage(s); the paper's 2x2048 default keeps this rare even at");
    println!(">400k flows/min, and misses only delay taxation by one round.");
}
