//! Quickstart: the Figure 1 experience in one minute.
//!
//! Two TCP NewReno flows with different RTTs (20 ms vs 40 ms) share a
//! 1 Gbps bottleneck. Under FIFO, the short-RTT flow wins persistently;
//! with Cebinae on the bottleneck port, the allocation is pushed toward the
//! max-min split.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cebinae_repro::prelude::*;

fn main() {
    let flows = vec![
        DumbbellFlow::new(CcKind::NewReno, 20),
        DumbbellFlow::new(CcKind::NewReno, 40),
    ];

    println!("Two NewReno flows (RTT 20 ms vs 40 ms), 1 Gbps bottleneck, 60 s\n");
    for discipline in [Discipline::Fifo, Discipline::Cebinae] {
        let mut params = ScenarioParams::new(1_000_000_000, 850, discipline);
        params.duration = Duration::from_secs(60);
        params.cebinae_p = Some(1);

        let (config, bottleneck) = dumbbell(&flows, &params);
        let result = Simulation::new(config).run();

        let goodputs = result.goodputs_bps(Time::from_secs(3));
        let throughput = result.link_throughput_bps(bottleneck, Time::from_secs(3));
        println!("{}:", discipline.label());
        println!("  bottleneck throughput: {:6.2} Mbps", throughput / 1e6);
        println!(
            "  per-flow goodput:      {:6.2} / {:.2} Mbps",
            goodputs[0] / 1e6,
            goodputs[1] / 1e6
        );
        println!("  Jain's fairness index: {:.3}\n", jfi(&goodputs));
    }
    println!("Cebinae taxes whichever flow holds the link's maximum rate by 1% per");
    println!("round, letting the long-RTT flow reclaim the headroom — no per-flow");
    println!("queues, no end-host changes, two priorities total.");
}
